/// \file precision_oracle_test.cpp
/// Differential oracle for the adaptive-precision score routes: forcing
/// int8 / int16 / int32 / bitpar through `align_options::precision` must
/// be byte-identical (score AND end cell) to the default int32 route and
/// to the independent naive DP oracle, on every runnable engine variant.
/// Failure messages always carry the seed that produced the pair, so any
/// red run is reproducible from the log alone.
///
/// The escalation suites pin the saturation boundary of the checked
/// narrow kernels: scores one relax step below the watermark stay on the
/// narrow path and are exact; scores at or above it trip the sticky
/// overflow mask (or the upfront bound check) and are transparently
/// re-scored by the rolling int32 engine — observable both as correct
/// scores through the public API and as `escalated_pairs` on a directly
/// instantiated batch engine.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "anyseq/anyseq.hpp"
#include "baselines/naive.hpp"
#include "core/bitpar.hpp"
#include "core/rolling.hpp"
#include "testutil.hpp"
#include "tiled/batch_engine.hpp"

namespace anyseq {
namespace {

using test::view;

/// Backends this binary + CPU can actually force.
std::vector<backend> runnable_backends() {
  std::vector<backend> out{backend::scalar};
  if (test::backend_runnable(backend::simd_avx2))
    out.push_back(backend::simd_avx2);
  if (test::backend_runnable(backend::simd_avx512))
    out.push_back(backend::simd_avx512);
  return out;
}

alignment_result run(const std::vector<char_t>& q,
                     const std::vector<char_t>& s, align_options o) {
  o.threads = 1;
  return align(view(q), view(s), o);
}

// --- randomized differential oracle -----------------------------------

struct precision_case {
  align_kind kind;
  score_t match, mismatch, open, extend;
};

class PrecisionOracle : public ::testing::TestWithParam<precision_case> {};

void PrintTo(const precision_case& p, std::ostream* os) {
  *os << to_string(p.kind) << " m" << p.match << "/" << p.mismatch << " g"
      << p.open << "," << p.extend;
}

TEST_P(PrecisionOracle, ForcedRoutesMatchNaiveAndAuto) {
  const auto p = GetParam();
  const baselines::naive_params np =
      test::oracle_affine(p.kind, p.match, p.mismatch, p.open, p.extend);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    std::mt19937_64 rng(seed * 7919);
    std::uniform_int_distribution<int> len(1, 90);
    const auto q = test::random_codes(static_cast<std::size_t>(len(rng)),
                                      seed * 31 + 1);
    const auto s = test::random_codes(static_cast<std::size_t>(len(rng)),
                                      seed * 31 + 2);
    SCOPED_TRACE(::testing::Message()
                 << "seed " << seed << " n " << q.size() << " m "
                 << s.size());
    align_options base;
    base.kind = p.kind;
    base.match = p.match;
    base.mismatch = p.mismatch;
    base.gap_open = p.open;
    base.gap_extend = p.extend;
    const score_t want = baselines::naive_score(q, s, np);
    for (backend b : runnable_backends()) {
      base.exec = b;
      ASSERT_EQ(run(q, s, base).score, want)
          << "auto route vs oracle on " << to_string(b);
      // End-cell identity is pinned to the int32 rolling engine — the
      // escalation target the narrow kernels must be indistinguishable
      // from (auto may route through the tiled engine, whose tie-break
      // among equal optima can legitimately differ).
      align_options o = base;
      o.precision = score_precision::int32;
      const auto ref = run(q, s, o);
      ASSERT_EQ(ref.score, want) << "int32 route vs oracle on "
                                 << to_string(b);
      for (score_precision prec :
           {score_precision::int8, score_precision::int16}) {
        o.precision = prec;
        const auto got = run(q, s, o);
        ASSERT_EQ(got.score, want)
            << to_string(prec) << " vs oracle on " << to_string(b);
        ASSERT_EQ(got.q_end, ref.q_end)
            << to_string(prec) << " end_i diverged on " << to_string(b);
        ASSERT_EQ(got.s_end, ref.s_end)
            << to_string(prec) << " end_j diverged on " << to_string(b);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PrecisionOracle,
    ::testing::Values(
        precision_case{align_kind::global, 2, -1, 0, -1},
        precision_case{align_kind::global, 1, -3, -2, -1},
        precision_case{align_kind::global, 5, -4, -1, -2},
        precision_case{align_kind::local, 2, -1, 0, -1},
        precision_case{align_kind::local, 3, -2, -10, -1},
        precision_case{align_kind::semiglobal, 2, -1, -2, -1},
        precision_case{align_kind::semiglobal, 1, -1, 0, -3},
        precision_case{align_kind::extension, 2, -1, -2, -1},
        precision_case{align_kind::extension, 5, -4, 0, -1}));

TEST(PrecisionOracle, BitparMatchesNaiveAndInt32OnUnitCostSets) {
  for (const score_t g : {-1, -2, -3}) {
    const auto np =
        test::oracle_linear(align_kind::global, 0, g, g);
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      std::mt19937_64 rng(seed * 271);
      std::uniform_int_distribution<int> len(1, 220);  // multi-word n
      const auto q = test::random_codes(
          static_cast<std::size_t>(len(rng)), seed * 17 + 3);
      const auto s = test::random_codes(
          static_cast<std::size_t>(len(rng)), seed * 17 + 4);
      SCOPED_TRACE(::testing::Message() << "g " << g << " seed " << seed
                                        << " n " << q.size() << " m "
                                        << s.size());
      align_options o;
      o.kind = align_kind::global;
      o.match = 0;
      o.mismatch = g;
      o.gap_extend = g;
      for (backend b : runnable_backends()) {
        o.exec = b;
        o.precision = score_precision::auto_select;  // admits bitpar
        const auto got = run(q, s, o);
        o.precision = score_precision::int32;
        const auto ref = run(q, s, o);
        ASSERT_EQ(got.score, baselines::naive_score(q, s, np))
            << "bitpar vs oracle on " << to_string(b);
        ASSERT_EQ(got.score, ref.score) << to_string(b);
        ASSERT_EQ(got.q_end, ref.q_end) << to_string(b);
        ASSERT_EQ(got.s_end, ref.s_end) << to_string(b);
      }
    }
  }
}

TEST(PrecisionOracle, BitparPlanAndValidation) {
  align_options o;
  o.kind = align_kind::global;
  o.match = 0;
  o.mismatch = -1;
  o.gap_extend = -1;
  o.threads = 1;
  aligner a(o);
  const auto p = a.plan(150, 150);
  EXPECT_STREQ(p.route, "bitpar_score");
  EXPECT_EQ(p.precision, score_precision::bitpar);
  EXPECT_GT(p.workspace_bytes, 0u);

  // Forcing bitpar on a non-unit-cost option set must be rejected up
  // front, not silently mis-scored.
  align_options bad;
  bad.precision = score_precision::bitpar;  // default match=2 isn't unit
  EXPECT_THROW(aligner{bad}, invalid_argument_error);
  bad = o;
  bad.precision = score_precision::bitpar;
  bad.want_alignment = true;
  EXPECT_THROW(aligner{bad}, invalid_argument_error);
}

TEST(PrecisionOracle, ForcedPrecisionPlanReportsRoute) {
  align_options o;
  o.threads = 1;
  o.precision = score_precision::int8;
  aligner a8(o);
  EXPECT_STREQ(a8.plan(40, 40).route, "precision_score");
  EXPECT_EQ(a8.plan(40, 40).precision, score_precision::int8);
  o.precision = score_precision::int16;
  aligner a16(o);
  EXPECT_STREQ(a16.plan(40, 40).route, "precision_score");
  EXPECT_EQ(a16.plan(40, 40).precision, score_precision::int16);
  o.precision = score_precision::int32;
  aligner a32(o);
  EXPECT_STREQ(a32.plan(40, 40).route, "small_score");
  EXPECT_EQ(a32.plan(40, 40).precision, score_precision::int32);
  o.precision = score_precision::auto_select;
  aligner aa(o);
  EXPECT_EQ(aa.plan(40, 40).precision, score_precision::int32);
}

TEST(PrecisionOracle, BitparOversizedAlphabetFallsBackToRolling) {
  // Character codes >= kBitparMaxCode can't index the Peq table; the
  // route must silently re-score through the rolling engine instead of
  // failing.  Equality scoring over raw codes keeps the oracle valid.
  std::vector<char_t> q(40), s(37);
  for (std::size_t i = 0; i < q.size(); ++i)
    q[i] = static_cast<char_t>(30 + i % 14);  // codes 30..43 straddle cap
  for (std::size_t i = 0; i < s.size(); ++i)
    s[i] = static_cast<char_t>(30 + (i * 5) % 14);
  align_options o;
  o.kind = align_kind::global;
  o.match = 0;
  o.mismatch = -1;
  o.gap_extend = -1;
  const auto got = run(q, s, o);
  o.precision = score_precision::int32;
  const auto ref = run(q, s, o);
  EXPECT_EQ(got.score, ref.score);
  EXPECT_EQ(got.q_end, ref.q_end);
  EXPECT_EQ(got.s_end, ref.s_end);
}

// --- saturation boundary / escalation ---------------------------------

/// All-match pair of length L: global score climbs to L * match, the
/// sharpest controllable approach to the high watermark Emax - step.
std::vector<char_t> ramp(index_t len) {
  std::vector<char_t> out(static_cast<std::size_t>(len));
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<char_t>(i % 4);
  return out;
}

class PrecisionEscalation : public ::testing::TestWithParam<backend> {};

TEST_P(PrecisionEscalation, Int8BoundaryScoresStayExact) {
  // match 2 -> step 2, hi watermark 127 - 2 = 125.  L = 62 peaks at 124
  // (inside the window, must NOT escalate); L = 63 peaks at 126 (inside
  // int8 but past the watermark -> conservative escalation); L = 64
  // would saturate at 127.  All three must return the exact score.
  if (!test::backend_runnable(GetParam())) GTEST_SKIP();
  for (const index_t len : {62, 63, 64}) {
    const auto q = ramp(len);
    align_options o;
    o.exec = GetParam();
    o.threads = 1;
    o.precision = score_precision::int8;
    const auto r = run(q, q, o);
    EXPECT_EQ(r.score, 2 * len) << "len " << len;
    EXPECT_EQ(r.q_end, len);
    EXPECT_EQ(r.s_end, len);
  }
}

TEST_P(PrecisionEscalation, Int16BoundaryScoresStayExact) {
  // match 100 -> step 100, hi watermark 32767 - 100 = 32667.  L = 326
  // peaks at 32600 (clean), L = 327 at 32700 (watermark tripped),
  // L = 328 would saturate.
  if (!test::backend_runnable(GetParam())) GTEST_SKIP();
  for (const index_t len : {326, 327, 328}) {
    const auto q = ramp(len);
    align_options o;
    o.exec = GetParam();
    o.threads = 1;
    o.match = 100;
    o.precision = score_precision::int16;
    const auto r = run(q, q, o);
    EXPECT_EQ(r.score, 100 * len) << "len " << len;
    EXPECT_EQ(r.q_end, len);
    EXPECT_EQ(r.s_end, len);
  }
}

TEST_P(PrecisionEscalation, Int8DeepBoundaryEscalatesUpfront) {
  // Global inits reach -L * |gap|; past the low watermark the whole
  // chunk escalates before a single cell is relaxed, and the score must
  // still be exact (200bp evolved pair, scores far outside int8).
  if (!test::backend_runnable(GetParam())) GTEST_SKIP();
  const auto q = test::random_codes(200, 97);
  const auto s = test::mutate(q, 98);
  align_options o;
  o.exec = GetParam();
  o.threads = 1;
  o.precision = score_precision::int8;
  const auto forced = run(q, s, o);
  o.precision = score_precision::int32;
  const auto ref = run(q, s, o);
  EXPECT_EQ(forced.score, ref.score);
  EXPECT_EQ(forced.q_end, ref.q_end);
  EXPECT_EQ(forced.s_end, ref.s_end);
}

INSTANTIATE_TEST_SUITE_P(Backends, PrecisionEscalation,
                         ::testing::Values(backend::scalar,
                                           backend::simd_avx2,
                                           backend::simd_avx512));

// --- direct batch-engine escalation accounting ------------------------

TEST(PrecisionEscalation, PartialChunkEscalationShedsOnlyHotLanes) {
  // 32 uniform 100bp global pairs, forced int8 (step 2, watermark 125):
  // four engineered self-alignment lanes climb to 200 and must escalate;
  // the 28 random lanes stay inside [-100, ~40] and must not.  Every
  // lane — shed or kept — must match the rolling engine exactly.
  std::vector<std::vector<char_t>> qs, ss;
  std::vector<tiled::pair_view> pairs;
  for (int i = 0; i < 32; ++i) {
    qs.push_back(test::random_codes(100, 1000 + i));
    ss.push_back(i % 8 == 0 ? qs.back()  // hot: all matches
                            : test::random_codes(100, 2000 + i));
  }
  for (int i = 0; i < 32; ++i) pairs.push_back({view(qs[i]), view(ss[i])});
  const simple_scoring sc{2, -1};
  tiled::batch_engine<align_kind::global, linear_gap, simple_scoring, 16>
      eng(linear_gap{-1}, sc,
          {1, score_precision::int8});  // kLanes8 = 32: one checked chunk
  const auto got = eng.scores(pairs);
  const auto st = eng.last_stats();
  EXPECT_EQ(st.escalated_pairs, 4u);
  EXPECT_EQ(st.int8_pairs, 28u);
  EXPECT_EQ(st.simd_pairs, 28u);
  EXPECT_EQ(st.scalar_pairs, 4u);
  for (int i = 0; i < 32; ++i) {
    const auto want =
        rolling_score<align_kind::global>(pairs[i].q, pairs[i].s,
                                          linear_gap{-1}, sc);
    EXPECT_EQ(got[i], want.score) << "lane " << i;
  }
}

TEST(PrecisionEscalation, CleanForcedChunkDoesNotEscalate) {
  std::vector<std::vector<char_t>> qs, ss;
  std::vector<tiled::pair_view> pairs;
  for (int i = 0; i < 32; ++i) {
    qs.push_back(test::random_codes(40, 3000 + i));
    ss.push_back(test::random_codes(40, 4000 + i));
  }
  for (int i = 0; i < 32; ++i) pairs.push_back({view(qs[i]), view(ss[i])});
  const simple_scoring sc{2, -1};
  tiled::batch_engine<align_kind::global, linear_gap, simple_scoring, 16>
      eng(linear_gap{-1}, sc, {1, score_precision::int8});
  (void)eng.scores(pairs);
  EXPECT_EQ(eng.last_stats().escalated_pairs, 0u);
  EXPECT_EQ(eng.last_stats().int8_pairs, 32u);
}

TEST(PrecisionEscalation, AutoSelectsInt8ForTinyUniformChunks) {
  // 20bp pairs under 2/-1/-1: bound (20+20+2)*2 = 84 < 96 -> the auto
  // planner runs the unchecked int8 kernel at doubled lane count.
  std::vector<std::vector<char_t>> qs, ss;
  std::vector<tiled::pair_view> pairs;
  for (int i = 0; i < 32; ++i) {
    qs.push_back(test::random_codes(20, 5000 + i));
    ss.push_back(test::random_codes(20, 6000 + i));
  }
  for (int i = 0; i < 32; ++i) pairs.push_back({view(qs[i]), view(ss[i])});
  const simple_scoring sc{2, -1};
  tiled::batch_engine<align_kind::global, linear_gap, simple_scoring, 16>
      eng(linear_gap{-1}, sc, {1});
  const auto got = eng.scores(pairs);
  const auto st = eng.last_stats();
  EXPECT_EQ(st.int8_pairs, 32u);
  EXPECT_EQ(st.escalated_pairs, 0u);
  for (int i = 0; i < 32; ++i) {
    const auto want =
        rolling_score<align_kind::global>(pairs[i].q, pairs[i].s,
                                          linear_gap{-1}, sc);
    EXPECT_EQ(got[i], want.score) << "lane " << i;
  }
}

TEST(PrecisionEscalation, BitparBatchCountsAndMatchesRolling) {
  std::vector<std::vector<char_t>> qs, ss;
  std::vector<tiled::pair_view> pairs;
  for (int i = 0; i < 24; ++i) {
    qs.push_back(test::random_codes(150, 7000 + i));
    ss.push_back(test::mutate(qs.back(), 8000 + i));
  }
  for (int i = 0; i < 24; ++i) pairs.push_back({view(qs[i]), view(ss[i])});
  const simple_scoring sc{0, -1};  // unit cost
  tiled::batch_engine<align_kind::global, linear_gap, simple_scoring, 16>
      eng(linear_gap{-1}, sc, {1, score_precision::bitpar});
  const auto got = eng.scores(pairs);
  EXPECT_EQ(eng.last_stats().bitpar_pairs, 24u);
  for (int i = 0; i < 24; ++i) {
    const auto want =
        rolling_score<align_kind::global>(pairs[i].q, pairs[i].s,
                                          linear_gap{-1}, sc);
    EXPECT_EQ(got[i], want.score) << "pair " << i;
  }
}

// --- ragged lane-padding oracle ---------------------------------------

/// Mixed-length batches through the public API: every precision mode must
/// stay byte-identical (score AND end cell) to the int32 rolling route,
/// whether a chunk lane-pads, escalates, or splits to scalar.
class RaggedOracle : public ::testing::TestWithParam<precision_case> {};

TEST_P(RaggedOracle, JitteredBatchesMatchInt32Rolling) {
  const auto p = GetParam();
  const baselines::naive_params np =
      test::oracle_affine(p.kind, p.match, p.mismatch, p.open, p.extend);
  for (const std::uint64_t seed : {1, 2, 3}) {
    // Near-shape run (what the service's shape sort produces): lengths
    // jitter in [40, 50], so no chunk is uniform but the padding waste
    // stays well under the default cap.
    std::mt19937_64 rng(seed * 101);
    std::uniform_int_distribution<int> len(40, 50);
    std::vector<std::vector<char_t>> qs, ss;
    std::vector<seq_pair> pairs;
    for (int i = 0; i < 48; ++i) {
      qs.push_back(test::random_codes(static_cast<std::size_t>(len(rng)),
                                      seed * 977 + i));
      ss.push_back(test::random_codes(static_cast<std::size_t>(len(rng)),
                                      seed * 991 + i));
    }
    for (int i = 0; i < 48; ++i) pairs.push_back({view(qs[i]), view(ss[i])});
    align_options base;
    base.kind = p.kind;
    base.match = p.match;
    base.mismatch = p.mismatch;
    base.gap_open = p.open;
    base.gap_extend = p.extend;
    base.threads = 1;
    for (backend b : runnable_backends()) {
      base.exec = b;
      SCOPED_TRACE(::testing::Message() << "seed " << seed << " backend "
                                        << to_string(b));
      align_options o = base;
      o.precision = score_precision::int32;
      aligner ref_a(o);
      std::vector<alignment_result> ref;
      ref_a.align_batch_into(pairs, ref);
      for (score_precision prec :
           {score_precision::auto_select, score_precision::int8,
            score_precision::int16}) {
        o.precision = prec;
        aligner a(o);
        std::vector<alignment_result> got;
        a.align_batch_into(pairs, got);
        for (int i = 0; i < 48; ++i) {
          SCOPED_TRACE(::testing::Message()
                       << to_string(prec) << " pair " << i);
          ASSERT_EQ(got[i].score,
                    baselines::naive_score(qs[i], ss[i], np));
          ASSERT_EQ(got[i].score, ref[i].score);
          ASSERT_EQ(got[i].q_end, ref[i].q_end);
          ASSERT_EQ(got[i].s_end, ref[i].s_end);
        }
        // Vector variants must actually take the lane-padded path under
        // auto (int16 window admits 50bp; the scalar variant's width-1
        // chunks are trivially uniform and never pad).
        if (b != backend::scalar &&
            prec == score_precision::auto_select)
          EXPECT_GT(a.last_batch_stats().ragged_pairs, 0u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RaggedOracle,
    ::testing::Values(
        precision_case{align_kind::global, 2, -1, 0, -1},
        precision_case{align_kind::global, 5, -4, -1, -2},
        precision_case{align_kind::local, 2, -1, 0, -1},
        precision_case{align_kind::local, 3, -2, -10, -1},
        precision_case{align_kind::semiglobal, 2, -1, -2, -1},
        precision_case{align_kind::semiglobal, 1, -1, 0, -3},
        precision_case{align_kind::extension, 2, -1, -2, -1}));

TEST(RaggedOracle, ForcedInt8RaggedShedsOnlyHotLanes) {
  // Mixed 95-100bp chunk, forced int8 (checked kernel over the padded
  // shape): engineered self-alignment lanes climb past the watermark and
  // must escalate; the rest must score on the padded lanes.  Every lane
  // must match the rolling engine exactly either way — the padding x
  // overflow-escalation interplay the tentpole promises.
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<int> len(95, 100);
  std::vector<std::vector<char_t>> qs, ss;
  std::vector<tiled::pair_view> pairs;
  for (int i = 0; i < 32; ++i) {
    qs.push_back(test::random_codes(static_cast<std::size_t>(len(rng)),
                                    1100 + i));
    ss.push_back(i % 8 == 0 ? qs.back()  // hot: all matches, score ~2L
                            : test::random_codes(
                                  static_cast<std::size_t>(len(rng)),
                                  2100 + i));
  }
  for (int i = 0; i < 32; ++i) pairs.push_back({view(qs[i]), view(ss[i])});
  const simple_scoring sc{2, -1};
  tiled::batch_engine<align_kind::global, linear_gap, simple_scoring, 16>
      eng(linear_gap{-1}, sc, {1, score_precision::int8});
  const auto got = eng.scores(pairs);
  const auto st = eng.last_stats();
  EXPECT_GE(st.escalated_pairs, 4u);  // at least the engineered lanes
  EXPECT_EQ(st.ragged_pairs + st.escalated_pairs, 32u);
  EXPECT_EQ(st.simd_pairs, st.ragged_pairs);
  EXPECT_GT(st.padded_cells, 0u);
  for (int i = 0; i < 32; ++i) {
    const auto want = rolling_score<align_kind::global>(
        pairs[i].q, pairs[i].s, linear_gap{-1}, sc);
    EXPECT_EQ(got[i], want.score) << "lane " << i;
  }
}

TEST(RaggedOracle, WasteCapSplitsOrAdmitsAtBoundary) {
  // 31 lanes (20, 20) + 1 lane (10, 10): padded chunk 32*20*20 = 12800
  // cells, used 31*400 + 100 = 12500, waste 300.  Admission requires
  // 300 * 100 <= 12800 * cap, i.e. cap >= 3 admits, cap <= 2 splits to
  // the scalar fallback; cap 0 disables padding outright.  Results are
  // byte-identical to rolling on both sides of the boundary.
  std::vector<std::vector<char_t>> qs, ss;
  std::vector<tiled::pair_view> pairs;
  for (int i = 0; i < 32; ++i) {
    const std::size_t l = i == 7 ? 10 : 20;
    qs.push_back(test::random_codes(l, 5100 + i));
    ss.push_back(test::random_codes(l, 6100 + i));
  }
  for (int i = 0; i < 32; ++i) pairs.push_back({view(qs[i]), view(ss[i])});
  const simple_scoring sc{2, -1};
  struct boundary_case {
    int cap;
    bool ragged;
  };
  for (const boundary_case c :
       {boundary_case{3, true}, boundary_case{2, false},
        boundary_case{0, false}}) {
    SCOPED_TRACE(::testing::Message() << "cap " << c.cap);
    tiled::batch_engine<align_kind::global, linear_gap, simple_scoring, 16>
        eng(linear_gap{-1}, sc,
            {1, score_precision::auto_select, c.cap});
    const auto got = eng.scores(pairs);
    const auto st = eng.last_stats();
    if (c.ragged) {
      // (20+20+2)*2 = 84 < 96: the auto planner runs the unchecked int8
      // ragged kernel over the whole 32-lane chunk.
      EXPECT_EQ(st.ragged_pairs, 32u);
      EXPECT_EQ(st.padded_cells, 300u);
      EXPECT_EQ(st.escalated_pairs, 0u);
    } else {
      // The mixed chunk [0, 16) splits to the scalar fallback; the
      // trailing 16 pairs are exactly uniform (20, 20) and still
      // vectorize through the uniform (non-padded) int16 route.
      EXPECT_EQ(st.ragged_pairs, 0u);
      EXPECT_EQ(st.padded_cells, 0u);
      EXPECT_EQ(st.scalar_pairs, 16u);
      EXPECT_EQ(st.simd_pairs, 16u);
    }
    for (int i = 0; i < 32; ++i) {
      const auto want = rolling_score<align_kind::global>(
          pairs[i].q, pairs[i].s, linear_gap{-1}, sc);
      EXPECT_EQ(got[i], want.score) << "lane " << i;
    }
  }
}

TEST(RaggedOracle, WasteCapValidation) {
  align_options o;
  o.pad_waste_cap_pct = -1;
  EXPECT_THROW(aligner{o}, invalid_argument_error);
  o.pad_waste_cap_pct = 101;
  EXPECT_THROW(aligner{o}, invalid_argument_error);
  o.pad_waste_cap_pct = 100;
  EXPECT_NO_THROW(aligner{o});
}

}  // namespace
}  // namespace anyseq
