#include "core/full_engine.hpp"

#include <gtest/gtest.h>

#include "core/alphabet.hpp"
#include "testutil.hpp"

namespace anyseq {
namespace {

using test::view;

std::vector<char_t> enc(const std::string& s) { return dna_encode_all(s); }

TEST(FullEngineGlobal, IdenticalSequences) {
  auto q = enc("ACGTACGT");
  auto r = full_align<align_kind::global>(view(q), view(q), linear_gap{-1},
                                          simple_scoring{2, -1});
  EXPECT_EQ(r.score, 16);
  EXPECT_EQ(r.q_aligned, "ACGTACGT");
  EXPECT_EQ(r.s_aligned, "ACGTACGT");
  EXPECT_EQ(r.cigar, "8=");
}

TEST(FullEngineGlobal, EmptyVsEmpty) {
  std::vector<char_t> q, s;
  auto r = full_align<align_kind::global>(view(q), view(s), linear_gap{-1},
                                          simple_scoring{2, -1});
  EXPECT_EQ(r.score, 0);
  EXPECT_TRUE(r.q_aligned.empty());
}

TEST(FullEngineGlobal, EmptyVsNonEmptyLinear) {
  std::vector<char_t> q;
  auto s = enc("ACGT");
  auto r = full_align<align_kind::global>(view(q), view(s), linear_gap{-1},
                                          simple_scoring{2, -1});
  EXPECT_EQ(r.score, -4);
  EXPECT_EQ(r.q_aligned, "----");
  EXPECT_EQ(r.s_aligned, "ACGT");
}

TEST(FullEngineGlobal, EmptyVsNonEmptyAffine) {
  std::vector<char_t> q;
  auto s = enc("ACGT");
  auto r = full_align<align_kind::global>(view(q), view(s), affine_gap{-2, -1},
                                          simple_scoring{2, -1});
  EXPECT_EQ(r.score, -6);  // one open (-2) + 4 extends (-4)
}

TEST(FullEngineGlobal, SingleSubstitution) {
  auto q = enc("ACGT"), s = enc("AGGT");
  auto r = full_align<align_kind::global>(view(q), view(s), linear_gap{-1},
                                          simple_scoring{2, -1});
  EXPECT_EQ(r.score, 5);  // 3 matches + 1 mismatch
  EXPECT_EQ(r.cigar, "1=1X2=");
}

TEST(FullEngineGlobal, SingleInsertionAffinePrefersOneGap) {
  auto q = enc("ACGT"), s = enc("ACGGT");
  auto r = full_align<align_kind::global>(view(q), view(s), affine_gap{-2, -1},
                                          simple_scoring{2, -1});
  EXPECT_EQ(r.score, 8 - 3);  // 4 matches, one gap open+extend
  EXPECT_EQ(r.q_aligned.size(), 5u);
}

TEST(FullEngineGlobal, AffineMergesGapsLinearSplitsThem) {
  // q has two separated deletions vs s; with a huge open cost the affine
  // optimum prefers one long gap even at the cost of mismatches.
  auto q = enc("AAAATTTTCCCC"), s = enc("AAAACCCC");
  auto lin = full_align<align_kind::global>(view(q), view(s), linear_gap{-1},
                                            simple_scoring{2, -1});
  auto aff = full_align<align_kind::global>(view(q), view(s),
                                            affine_gap{-10, -1},
                                            simple_scoring{2, -1});
  EXPECT_EQ(lin.score, 16 - 4);  // 8 matches, 4 gap symbols
  EXPECT_EQ(aff.score, 16 - 14); // 8 matches, one open + 4 extends
}

TEST(FullEngineLocal, FindsEmbeddedMatch) {
  auto q = enc("TTTTACGTACGTTTTT");
  auto s = enc("GGGGACGTACGGGGGG");
  auto r = full_align<align_kind::local>(view(q), view(s), linear_gap{-2},
                                         simple_scoring{2, -2});
  EXPECT_EQ(r.score, 14);  // "ACGTACG" 7 matches
  EXPECT_EQ(r.q_aligned, "ACGTACG");
  EXPECT_EQ(r.s_aligned, "ACGTACG");
  EXPECT_EQ(r.q_begin, 4);
  EXPECT_EQ(r.s_begin, 4);
}

TEST(FullEngineLocal, AllMismatchesGiveEmptyAlignment) {
  auto q = enc("AAAA"), s = enc("TTTT");
  auto r = full_align<align_kind::local>(view(q), view(s), linear_gap{-1},
                                         simple_scoring{2, -1});
  EXPECT_EQ(r.score, 0);
  EXPECT_TRUE(r.q_aligned.empty());
}

TEST(FullEngineLocal, ScoreNeverNegative) {
  auto q = test::random_codes(40, 1);
  auto s = test::random_codes(35, 2);
  auto r = full_align<align_kind::local>(view(q), view(s), linear_gap{-3},
                                         simple_scoring{1, -3});
  EXPECT_GE(r.score, 0);
}

TEST(FullEngineSemiglobal, FreeEndGaps) {
  // Read contained in a longer reference: all matches, no gap penalty.
  auto q = enc("ACGTAC");
  auto s = enc("TTTTACGTACTTTT");
  auto r = full_align<align_kind::semiglobal>(view(q), view(s),
                                              linear_gap{-1},
                                              simple_scoring{2, -1});
  EXPECT_EQ(r.score, 12);
  EXPECT_EQ(r.q_aligned, "ACGTAC");
  EXPECT_EQ(r.s_begin, 4);
  EXPECT_EQ(r.s_end, 10);
}

TEST(FullEngineSemiglobal, OverlapAlignment) {
  // Suffix of q overlaps prefix of s.
  auto q = enc("GGGGACGT");
  auto s = enc("ACGTCCCC");
  auto r = full_align<align_kind::semiglobal>(view(q), view(s),
                                              linear_gap{-1},
                                              simple_scoring{2, -1});
  EXPECT_EQ(r.score, 8);
  EXPECT_EQ(r.q_begin, 4);
  EXPECT_EQ(r.s_begin, 0);
}

TEST(FullEngineExtension, AnchoredAtOrigin) {
  // Extension must start at (0,0): prefix match then it may stop.
  auto q = enc("ACGTTTTT");
  auto s = enc("ACGAAAA");
  auto r = full_align<align_kind::extension>(view(q), view(s), linear_gap{-2},
                                             simple_scoring{2, -2});
  EXPECT_EQ(r.score, 6);  // "ACG" prefix
  EXPECT_EQ(r.q_begin, 0);
  EXPECT_EQ(r.s_begin, 0);
  EXPECT_EQ(r.q_end, 3);
  EXPECT_EQ(r.s_end, 3);
}

TEST(FullEngineTraceback, RescoreReproducesScoreLinear) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto q = test::random_codes(30 + seed, seed * 3 + 1);
    auto s = test::mutate(q, seed * 7 + 2);
    auto r = full_align<align_kind::global>(view(q), view(s), linear_gap{-1},
                                            simple_scoring{2, -1});
    const score_t re = rescore_alignment(
        r.q_aligned, r.s_aligned,
        [](char a, char b) { return a == b ? 2 : -1; }, linear_gap{-1});
    EXPECT_EQ(re, r.score) << "seed " << seed;
  }
}

TEST(FullEngineTraceback, RescoreReproducesScoreAffine) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto q = test::random_codes(25 + seed, seed + 11);
    auto s = test::mutate(q, seed + 12, 0.1, 0.08);
    auto r = full_align<align_kind::global>(view(q), view(s),
                                            affine_gap{-3, -1},
                                            simple_scoring{2, -1});
    const score_t re = rescore_alignment(
        r.q_aligned, r.s_aligned,
        [](char a, char b) { return a == b ? 2 : -1; }, affine_gap{-3, -1});
    EXPECT_EQ(re, r.score) << "seed " << seed;
  }
}

TEST(FullEngineTraceback, AlignedStringsConsistentWithInputs) {
  auto q = test::random_codes(40, 5);
  auto s = test::mutate(q, 6);
  auto r = full_align<align_kind::global>(view(q), view(s),
                                          affine_gap{-2, -1},
                                          simple_scoring{2, -1});
  // Stripping gaps must reproduce the inputs exactly.
  std::string q_plain, s_plain;
  for (char c : r.q_aligned)
    if (c != '-') q_plain.push_back(c);
  for (char c : r.s_aligned)
    if (c != '-') s_plain.push_back(c);
  EXPECT_EQ(q_plain, dna_decode_all(q));
  EXPECT_EQ(s_plain, dna_decode_all(s));
}

TEST(FullEngineTraceback, LocalRegionRescores) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto q = test::random_codes(50, seed + 100);
    auto s = test::random_codes(45, seed + 200);
    auto r = full_align<align_kind::local>(view(q), view(s),
                                           affine_gap{-4, -1},
                                           simple_scoring{3, -2});
    const score_t re = rescore_alignment(
        r.q_aligned, r.s_aligned,
        [](char a, char b) { return a == b ? 3 : -2; }, affine_gap{-4, -1});
    EXPECT_EQ(re, r.score) << "seed " << seed;
    // Region bounds consistent with emitted strings.
    std::size_t q_chars = 0, s_chars = 0;
    for (char c : r.q_aligned)
      if (c != '-') ++q_chars;
    for (char c : r.s_aligned)
      if (c != '-') ++s_chars;
    EXPECT_EQ(static_cast<index_t>(q_chars), r.q_end - r.q_begin);
    EXPECT_EQ(static_cast<index_t>(s_chars), r.s_end - r.s_begin);
  }
}

TEST(FullEngine, CellsCounterIsNM) {
  auto q = test::random_codes(13, 1), s = test::random_codes(17, 2);
  auto r = full_align<align_kind::global>(view(q), view(s), linear_gap{-1},
                                          simple_scoring{2, -1});
  EXPECT_EQ(r.cells, 13u * 17u);
}

TEST(FullEngine, MatrixScoringPath) {
  auto q = enc("ACGT"), s = enc("ACGT");
  const auto m = dna_matrix_scoring::uniform(2, -1);
  auto r = full_align<align_kind::global>(view(q), view(s), linear_gap{-1}, m);
  EXPECT_EQ(r.score, 8);
}

}  // namespace
}  // namespace anyseq
