#include "core/locate.hpp"

#include <gtest/gtest.h>

#include "core/full_engine.hpp"
#include "core/hirschberg.hpp"
#include "testutil.hpp"

namespace anyseq {
namespace {

using test::view;

/// Global aligner hook for locate_align: the serial D&C engine.
template <class Gap>
auto galign_of(const Gap& gap) {
  return [gap](stage::seq_view q, stage::seq_view s) {
    return hirschberg_align(q, s, gap, simple_scoring{2, -1});
  };
}

template <align_kind K, class Gap>
void locate_matches_full(std::uint64_t seed, index_t nq, index_t ns,
                         const Gap& gap) {
  auto q = test::random_codes(nq, seed);
  auto s = test::random_codes(ns, seed + 77);
  const simple_scoring sc{2, -1};
  const auto want = full_align<K>(view(q), view(s), gap, sc, true);
  const auto got =
      locate_align<K>(view(q), view(s), gap, sc, galign_of(gap));
  ASSERT_EQ(got.score, want.score) << to_string(K) << " seed " << seed;
  if (got.score > 0 || K == align_kind::semiglobal) {
    const score_t re = rescore_alignment(
        got.q_aligned, got.s_aligned,
        [](char a, char b) { return a == b ? 2 : -1; }, gap);
    EXPECT_EQ(re, got.score);
  }
}

TEST(Locate, LocalLinearRandom) {
  for (std::uint64_t seed = 0; seed < 8; ++seed)
    locate_matches_full<align_kind::local>(seed, 60, 55, linear_gap{-2});
}

TEST(Locate, LocalAffineRandom) {
  for (std::uint64_t seed = 0; seed < 8; ++seed)
    locate_matches_full<align_kind::local>(seed, 48, 62,
                                           affine_gap{-3, -1});
}

TEST(Locate, SemiglobalLinearRandom) {
  for (std::uint64_t seed = 0; seed < 8; ++seed)
    locate_matches_full<align_kind::semiglobal>(seed, 30, 90,
                                                linear_gap{-1});
}

TEST(Locate, SemiglobalAffineRandom) {
  for (std::uint64_t seed = 0; seed < 8; ++seed)
    locate_matches_full<align_kind::semiglobal>(seed, 90, 30,
                                                affine_gap{-2, -1});
}

TEST(Locate, LocalRegionCoordinatesConsistent) {
  auto q = test::random_codes(120, 5);
  auto s = test::mutate(q, 6);
  const affine_gap gap{-2, -1};
  const auto r = locate_align<align_kind::local>(
      view(q), view(s), gap, simple_scoring{2, -1}, galign_of(gap));
  std::size_t q_chars = 0, s_chars = 0;
  for (char c : r.q_aligned)
    if (c != '-') ++q_chars;
  for (char c : r.s_aligned)
    if (c != '-') ++s_chars;
  EXPECT_EQ(static_cast<index_t>(q_chars), r.q_end - r.q_begin);
  EXPECT_EQ(static_cast<index_t>(s_chars), r.s_end - r.s_begin);
}

TEST(Locate, EmptyLocalOptimalAlignment) {
  auto q = dna_encode_all("AAAA");
  auto s = dna_encode_all("TTTT");
  const linear_gap gap{-1};
  const auto r = locate_align<align_kind::local>(
      view(q), view(s), gap, simple_scoring{2, -1}, galign_of(gap));
  EXPECT_EQ(r.score, 0);
  EXPECT_TRUE(r.q_aligned.empty());
}

TEST(Locate, SemiglobalEmbeddedReadRecoversCoordinates) {
  auto ref = test::random_codes(500, 9);
  std::vector<char_t> read(ref.begin() + 100, ref.begin() + 250);
  const linear_gap gap{-1};
  const auto r = locate_align<align_kind::semiglobal>(
      view(read), view(ref), gap, simple_scoring{2, -1}, galign_of(gap));
  EXPECT_EQ(r.score, 300);
  EXPECT_EQ(r.s_begin, 100);
  EXPECT_EQ(r.s_end, 250);
  EXPECT_EQ(r.q_begin, 0);
  EXPECT_EQ(r.q_end, 150);
}

TEST(ExtensionBorderScore, MatchesBruteForceBorderMax) {
  // extension_border_score = max over last row/col of the global-init DP.
  auto q = test::random_codes(14, 11);
  auto s = test::random_codes(17, 12);
  const affine_gap gap{-2, -1};
  const simple_scoring sc{2, -1};
  const auto got = extension_border_score(view(q), view(s), gap, sc);

  // Brute force via the full extension engine's H matrix.
  full_engine<align_kind::extension, affine_gap, simple_scoring> eng(gap, sc);
  (void)eng.align(view(q), view(s), false);
  auto hm = eng.h_matrix(static_cast<index_t>(q.size()),
                         static_cast<index_t>(s.size()));
  score_t want = neg_inf();
  for (index_t i = 0; i <= static_cast<index_t>(q.size()); ++i)
    want = std::max(want, hm.read(i, static_cast<index_t>(s.size())));
  for (index_t j = 0; j <= static_cast<index_t>(s.size()); ++j)
    want = std::max(want, hm.read(static_cast<index_t>(q.size()), j));
  EXPECT_EQ(got.score, want);
}

}  // namespace
}  // namespace anyseq
