#include "core/alphabet.hpp"

#include <gtest/gtest.h>

namespace anyseq {
namespace {

TEST(Alphabet, EncodeCanonical) {
  EXPECT_EQ(dna_encode('A'), dna_a);
  EXPECT_EQ(dna_encode('C'), dna_c);
  EXPECT_EQ(dna_encode('G'), dna_g);
  EXPECT_EQ(dna_encode('T'), dna_t);
  EXPECT_EQ(dna_encode('N'), dna_n);
}

TEST(Alphabet, EncodeLowerCase) {
  EXPECT_EQ(dna_encode('a'), dna_a);
  EXPECT_EQ(dna_encode('t'), dna_t);
}

TEST(Alphabet, RnaUracilFoldsToT) {
  EXPECT_EQ(dna_encode('U'), dna_t);
  EXPECT_EQ(dna_encode('u'), dna_t);
}

TEST(Alphabet, AmbiguityCodesCollapseToN) {
  for (char c : {'R', 'Y', 'S', 'W', 'K', 'M', 'B', 'D', 'H', 'V', 'x', '?'})
    EXPECT_EQ(dna_encode(c), dna_n) << c;
}

TEST(Alphabet, DecodeRoundTrip) {
  for (char c : {'A', 'C', 'G', 'T', 'N'})
    EXPECT_EQ(dna_decode(dna_encode(c)), c);
}

TEST(Alphabet, EncodeDecodeAll) {
  const std::string s = "ACGTNacgtn";
  auto codes = dna_encode_all(s);
  ASSERT_EQ(codes.size(), 10u);
  EXPECT_EQ(dna_decode_all(codes), "ACGTNACGTN");
}

TEST(Alphabet, EncodeIsConstexpr) {
  static_assert(dna_encode('A') == 0);
  static_assert(dna_encode('G') == 2);
  static_assert(dna_decode(3) == 'T');
  SUCCEED();
}

}  // namespace
}  // namespace anyseq
