/// Property sweeps: every core engine must agree with the independent
/// oracles (textbook Gotoh DP + exhaustive path enumeration) across the
/// full (kind x gap x scoring) parameter grid.

#include <gtest/gtest.h>

#include "baselines/naive.hpp"
#include "core/full_engine.hpp"
#include "core/rolling.hpp"
#include "testutil.hpp"

namespace anyseq {
namespace {

using test::view;

struct grid_param {
  align_kind kind;
  score_t match, mismatch;
  score_t open, extend;  // open == 0 -> linear
  std::uint64_t seed;
};

void PrintTo(const grid_param& p, std::ostream* os) {
  *os << to_string(p.kind) << " m" << p.match << "/" << p.mismatch << " g"
      << p.open << "," << p.extend << " seed" << p.seed;
}

class OracleGrid : public ::testing::TestWithParam<grid_param> {};

template <align_kind K>
score_result run_rolling(const std::vector<char_t>& q,
                         const std::vector<char_t>& s, const grid_param& p) {
  const simple_scoring sc{p.match, p.mismatch};
  if (p.open == 0)
    return rolling_score<K>(view(q), view(s), linear_gap{p.extend}, sc);
  return rolling_score<K>(view(q), view(s), affine_gap{p.open, p.extend}, sc);
}

score_result run_kind(const std::vector<char_t>& q,
                      const std::vector<char_t>& s, const grid_param& p) {
  switch (p.kind) {
    case align_kind::global: return run_rolling<align_kind::global>(q, s, p);
    case align_kind::local: return run_rolling<align_kind::local>(q, s, p);
    case align_kind::semiglobal:
      return run_rolling<align_kind::semiglobal>(q, s, p);
    case align_kind::extension:
      return run_rolling<align_kind::extension>(q, s, p);
  }
  return {};
}

TEST_P(OracleGrid, RollingMatchesNaiveDp) {
  const auto p = GetParam();
  baselines::naive_params np = test::oracle_affine(p.kind, p.match,
                                                   p.mismatch, p.open,
                                                   p.extend);
  for (int rep = 0; rep < 4; ++rep) {
    auto q = test::random_codes(10 + 9 * rep, p.seed * 131 + rep);
    auto s = test::random_codes(12 + 7 * rep, p.seed * 131 + rep + 17);
    const score_t got = run_kind(q, s, p).score;
    const score_t want = baselines::naive_score(q, s, np);
    ASSERT_EQ(got, want) << "rep " << rep;
  }
}

TEST_P(OracleGrid, RollingMatchesExhaustiveEnumeration) {
  const auto p = GetParam();
  baselines::naive_params np = test::oracle_affine(p.kind, p.match,
                                                   p.mismatch, p.open,
                                                   p.extend);
  for (int rep = 0; rep < 3; ++rep) {
    auto q = test::random_codes(5 + rep, p.seed * 977 + rep);
    auto s = test::random_codes(7 - rep, p.seed * 977 + rep + 5);
    const score_t got = run_kind(q, s, p).score;
    const score_t want = baselines::exhaustive_score(q, s, np);
    ASSERT_EQ(got, want) << "rep " << rep;
  }
}

std::vector<grid_param> make_grid() {
  std::vector<grid_param> out;
  std::uint64_t seed = 1;
  for (align_kind k : test::all_kinds)
    for (auto [match, mismatch] : {std::pair<score_t, score_t>{2, -1},
                                   {1, -3},
                                   {5, -4}})
      for (auto [open, extend] : {std::pair<score_t, score_t>{0, -1},
                                  {0, -3},
                                  {-2, -1},
                                  {-10, -1},
                                  {-1, -2}})
        out.push_back({k, match, mismatch, open, extend, seed++});
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllKindsAllGaps, OracleGrid,
                         ::testing::ValuesIn(make_grid()));

// --- cross-engine invariants ------------------------------------------

class KindSweep : public ::testing::TestWithParam<align_kind> {};

TEST_P(KindSweep, ScoreSymmetricUnderSwap) {
  // For symmetric scoring, swapping q and s preserves the optimum
  // (E/F swap roles; global/local/semiglobal/extension are all symmetric).
  const align_kind k = GetParam();
  baselines::naive_params np =
      test::oracle_affine(k, 2, -1, -2, -1);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto q = test::random_codes(14, seed + 1);
    auto s = test::random_codes(18, seed + 2);
    EXPECT_EQ(baselines::naive_score(q, s, np),
              baselines::naive_score(s, q, np))
        << "oracle symmetry, seed " << seed;
    grid_param p{k, 2, -1, -2, -1, seed};
    EXPECT_EQ(run_kind(q, s, p).score, run_kind(s, q, p).score)
        << "engine symmetry, seed " << seed;
  }
}

TEST_P(KindSweep, SelfAlignmentIsAllMatches) {
  const align_kind k = GetParam();
  auto q = test::random_codes(25, 42);
  grid_param p{k, 2, -1, -2, -1, 0};
  EXPECT_EQ(run_kind(q, q, p).score, 50);
}

TEST_P(KindSweep, MonotoneInMatchScore) {
  const align_kind k = GetParam();
  auto q = test::random_codes(20, 7);
  auto s = test::mutate(q, 8);
  score_t prev = std::numeric_limits<score_t>::min();
  for (score_t match : {1, 2, 3, 5}) {
    grid_param p{k, match, -1, -2, -1, 0};
    const score_t v = run_kind(q, s, p).score;
    EXPECT_GE(v, prev) << "match " << match;
    prev = v;
  }
}

TEST_P(KindSweep, OrderingLocalGeSemiglobalGeGlobal) {
  // Relaxing endpoint constraints can only help:
  // local >= semiglobal >= global, and local >= extension >= global.
  const align_kind k = GetParam();
  (void)k;  // ordering checked once per param for different inputs
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto q = test::random_codes(22, seed * 13 + 1);
    auto s = test::random_codes(19, seed * 13 + 5);
    auto score_of = [&](align_kind kk) {
      grid_param p{kk, 2, -1, -2, -1, 0};
      return run_kind(q, s, p).score;
    };
    const score_t g = score_of(align_kind::global);
    const score_t sg = score_of(align_kind::semiglobal);
    const score_t loc = score_of(align_kind::local);
    const score_t ext = score_of(align_kind::extension);
    EXPECT_GE(sg, g);
    EXPECT_GE(loc, sg);
    EXPECT_GE(ext, g);
    EXPECT_GE(loc, ext);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, KindSweep,
                         ::testing::ValuesIn(test::all_kinds));

}  // namespace
}  // namespace anyseq
