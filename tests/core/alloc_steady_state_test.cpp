/// \file alloc_steady_state_test.cpp
/// The zero-steady-state-allocation contract of the plan/execute split:
/// a reused `anyseq::aligner` must perform NO heap allocations once its
/// workspace arena, pooled builders, and the recycled result's string
/// buffers have grown to the working set — on every CPU route — and the
/// service's submit/complete cycle must stay allocation-free end to end
/// for score-only traffic.
///
/// Counting is done by replacing the global operator new/delete with
/// counting forwarders.  Everything here runs with threads = 1: the
/// contract covers the serial execution of each route (spawning OS
/// worker threads inherently allocates; on multi-core deployments the
/// per-pass thread spawn is the documented exception).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <vector>

#include "anyseq/anyseq.hpp"
#include "capi/anyseq_c.h"
#include "parallel/thread_pool.hpp"
#include "service/service.hpp"
#include "service/trace.hpp"
#include "testutil.hpp"
#include "tiled/batch_engine.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (n + static_cast<std::size_t>(al) - 1) /
                                       static_cast<std::size_t>(al) *
                                       static_cast<std::size_t>(al)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace anyseq {
namespace {

using test::view;

/// Heap allocations performed (by ANY thread) while fn runs.
template <class Fn>
std::uint64_t allocs_during(Fn&& fn) {
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  fn();
  return g_allocs.load(std::memory_order_relaxed) - before;
}

align_options serial_opts() {
  align_options o;
  o.threads = 1;
  return o;
}

/// Warm an aligner+result on (q, s), then require zero allocations over
/// `iters` further calls.
void expect_steady_state(aligner& a, stage::seq_view q, stage::seq_view s,
                         int warmup = 3, int iters = 5) {
  alignment_result out;
  for (int i = 0; i < warmup; ++i) a.align_into(q, s, out);
  const auto n = allocs_during([&] {
    for (int i = 0; i < iters; ++i) a.align_into(q, s, out);
  });
  EXPECT_EQ(n, 0u) << "route " << a.plan(q.size(), s.size()).route
                   << " allocated in steady state";
}

TEST(AllocSteadyState, TiledScoreRoute) {
  const auto q = test::random_codes(700, 11);
  const auto s = test::random_codes(650, 22);
  align_options o = serial_opts();
  o.tile = 128;  // several tiles, clipped edges included
  aligner a(o);
  EXPECT_STREQ(a.plan(700, 650).route, "tiled_score");
  expect_steady_state(a, view(q), view(s));
}

TEST(AllocSteadyState, TiledScoreRouteAffineLocal) {
  const auto q = test::random_codes(500, 33);
  const auto s = test::random_codes(640, 44);
  align_options o = serial_opts();
  o.kind = align_kind::local;
  o.gap_open = -3;
  o.tile = 96;
  aligner a(o);
  expect_steady_state(a, view(q), view(s));
}

TEST(AllocSteadyState, TiledScoreRouteStaticSchedule) {
  const auto q = test::random_codes(600, 55);
  const auto s = test::random_codes(560, 66);
  align_options o = serial_opts();
  o.dynamic_schedule = false;  // the Fig. 6 baseline scheduler
  o.tile = 96;
  aligner a(o);
  expect_steady_state(a, view(q), view(s));
}

TEST(AllocSteadyState, SmallScoreRoute) {
  const auto q = test::random_codes(120, 5);
  const auto s = test::random_codes(110, 6);
  align_options o = serial_opts();
  o.kind = align_kind::extension;
  aligner a(o);
  EXPECT_STREQ(a.plan(120, 110).route, "small_score");
  expect_steady_state(a, view(q), view(s));
}

TEST(AllocSteadyState, PrecisionScoreRoutes) {
  // Forced narrow precisions run the checked kernel; both the clean pass
  // and the escalating pass (narrow rows + rolling rows in one frame)
  // must be covered by plan_bytes and stay allocation-free.
  const auto q = test::random_codes(60, 71);
  const auto s = test::random_codes(55, 72);
  for (const score_precision p :
       {score_precision::int8, score_precision::int16}) {
    align_options o = serial_opts();
    o.precision = p;
    aligner a(o);
    EXPECT_STREQ(a.plan(60, 55).route, "precision_score");
    expect_steady_state(a, view(q), view(s));
  }
  // Always-escalating shape: 200bp under int8 trips the upfront boundary
  // check, so every pass runs narrow-plan + rolling re-score.
  const auto lq = test::random_codes(200, 73);
  const auto ls = test::random_codes(190, 74);
  align_options o = serial_opts();
  o.precision = score_precision::int8;
  aligner a(o);
  EXPECT_STREQ(a.plan(200, 190).route, "precision_score");
  expect_steady_state(a, view(lq), view(ls));
}

TEST(AllocSteadyState, BitparScoreRoute) {
  const auto q = test::random_codes(150, 75);
  const auto s = test::random_codes(140, 76);
  align_options o = serial_opts();
  o.match = 0;
  o.mismatch = -1;
  o.gap_extend = -1;  // unit-cost set -> Myers bit-parallel engine
  aligner a(o);
  EXPECT_STREQ(a.plan(150, 140).route, "bitpar_score");
  expect_steady_state(a, view(q), view(s));
}

TEST(AllocSteadyState, BitparReserveMakesFirstPassAllocationFree) {
  const auto q = test::random_codes(300, 77);
  const auto s = test::random_codes(280, 78);
  align_options o = serial_opts();
  o.match = 0;
  o.mismatch = -2;
  o.gap_extend = -2;
  aligner a(o);
  a.reserve(300, 280);
  alignment_result out;
  const auto n = allocs_during([&] { a.align_into(view(q), view(s), out); });
  EXPECT_EQ(n, 0u) << "bitpar plan_bytes under-estimated its footprint";
}

TEST(AllocSteadyState, BatchEscalationSteadyState) {
  // Forced-int8 batch with hot lanes: the checked chunk sheds four
  // self-alignment pairs to the rolling engine every pass — escalation
  // scratch must come from the same pre-planned arena.
  std::vector<std::vector<char_t>> qs, ss;
  std::vector<seq_pair> pairs;
  for (int i = 0; i < 32; ++i) {
    qs.push_back(test::random_codes(100, 400 + i));
    ss.push_back(i % 8 == 0 ? qs.back() : test::random_codes(100, 500 + i));
  }
  for (std::size_t i = 0; i < qs.size(); ++i)
    pairs.push_back({view(qs[i]), view(ss[i])});
  align_options o = serial_opts();
  o.precision = score_precision::int8;
  aligner a(o);
  std::vector<alignment_result> out;
  for (int i = 0; i < 3; ++i) a.align_batch_into(pairs, out);
  const auto n = allocs_during([&] {
    for (int i = 0; i < 5; ++i) a.align_batch_into(pairs, out);
  });
  EXPECT_EQ(n, 0u) << "escalating batch allocated in steady state";
}

TEST(AllocSteadyState, BatchMultiThreadedPooledWorkersSteadyState) {
  // The multi-threaded batch fan-out pulls groups off a shared atomic
  // cursor and carves every chunk from pooled per-worker arenas — no
  // per-chunk workspace, no per-run pool spawn.  Every 16-pair chunk
  // here has the identical ragged footprint, so pre-sizing the worker
  // arenas to one chunk makes the warm path allocation-free no matter
  // how the workers race over the cursor.
  std::vector<std::vector<char_t>> qs, ss;
  std::vector<tiled::pair_view> pairs;
  for (int i = 0; i < 64; ++i) {
    qs.push_back(test::random_codes(90 + i % 4, 700 + i));  // nbar = 93
    ss.push_back(test::random_codes(96, 800 + i));          // mbar = 96
  }
  for (int i = 0; i < 64; ++i) pairs.push_back({view(qs[i]), view(ss[i])});
  const simple_scoring sc{2, -1};
  std::vector<workspace> worker_ws(2);
  for (auto& w : worker_ws)
    w.reserve_bytes(tiled::ragged_chunk_plan_bytes<score16_t, 16>(96));
  tiled::batch_engine<align_kind::global, linear_gap, simple_scoring, 16>
      eng(linear_gap{-1}, sc,
          {2, score_precision::auto_select, 25,
           std::span<workspace>(worker_ws)});
  workspace main_ws;
  std::vector<score_result> out(pairs.size());
  auto pass = [&] {
    main_ws.begin_pass();
    eng.score_into(std::span<const tiled::pair_view>(pairs), main_ws,
                   std::span<score_result>(out));
  };
  for (int i = 0; i < 3; ++i) pass();  // spawn the global pool, warm rings
  ASSERT_EQ(eng.last_stats().ragged_pairs, 64u);
  ASSERT_EQ(eng.last_stats().simd_pairs, 64u);
  const auto n = allocs_during([&] {
    for (int i = 0; i < 5; ++i) pass();
  });
  EXPECT_EQ(n, 0u)
      << "warm multi-threaded batch path allocated in steady state";
}

TEST(AllocSteadyState, BatchRaggedSteadyState) {
  // Single-threaded mixed-length batch through the public API: the
  // lane-padded chunks carve from the handle's arena like every other
  // route — warm passes allocate nothing.
  std::vector<std::vector<char_t>> qs, ss;
  std::vector<seq_pair> pairs;
  for (int i = 0; i < 32; ++i) {
    qs.push_back(test::random_codes(90 + i % 5, 900 + i));
    ss.push_back(test::random_codes(92 + i % 3, 950 + i));
  }
  for (std::size_t i = 0; i < qs.size(); ++i)
    pairs.push_back({view(qs[i]), view(ss[i])});
  align_options o = serial_opts();
  aligner a(o);
  std::vector<alignment_result> out;
  for (int i = 0; i < 3; ++i) a.align_batch_into(pairs, out);
  ASSERT_GT(a.last_batch_stats().ragged_pairs, 0u);
  const auto n = allocs_during([&] {
    for (int i = 0; i < 5; ++i) a.align_batch_into(pairs, out);
  });
  EXPECT_EQ(n, 0u) << "ragged batch allocated in steady state";
}

TEST(AllocSteadyState, FullMatrixTracebackRoute) {
  const auto q = test::random_codes(200, 7);
  const auto s = test::random_codes(180, 8);
  align_options o = serial_opts();
  o.want_alignment = true;
  aligner a(o);
  EXPECT_STREQ(a.plan(200, 180).route, "full_matrix");
  expect_steady_state(a, view(q), view(s));
}

TEST(AllocSteadyState, HirschbergTracebackRoute) {
  const auto q = test::random_codes(900, 9);
  const auto s = test::random_codes(800, 10);
  align_options o = serial_opts();
  o.want_alignment = true;
  o.full_matrix_cells = 0;  // force divide & conquer
  o.tile = 128;
  aligner a(o);
  EXPECT_STREQ(a.plan(900, 800).route, "hirschberg");
  expect_steady_state(a, view(q), view(s));
}

TEST(AllocSteadyState, LocateRoutes) {
  const auto q = test::random_codes(600, 13);
  const auto s = test::random_codes(700, 14);
  for (const align_kind k : {align_kind::local, align_kind::semiglobal}) {
    align_options o = serial_opts();
    o.kind = k;
    o.want_alignment = true;
    o.full_matrix_cells = 0;  // force locate + divide & conquer
    o.tile = 128;
    aligner a(o);
    EXPECT_STREQ(a.plan(600, 700).route, "locate");
    expect_steady_state(a, view(q), view(s));
  }
}

TEST(AllocSteadyState, BandedRoute) {
  const auto q = test::random_codes(400, 15);
  const auto s = test::random_codes(420, 16);
  align_options o = serial_opts();
  o.want_alignment = true;
  aligner a(o);
  const band b{-60, 80};
  alignment_result out;
  for (int i = 0; i < 3; ++i) a.align_banded_into(view(q), view(s), b, out);
  const auto n = allocs_during([&] {
    for (int i = 0; i < 5; ++i) a.align_banded_into(view(q), view(s), b, out);
  });
  EXPECT_EQ(n, 0u);
}

TEST(AllocSteadyState, BatchRoutes) {
  // 20 uniform pairs (SIMD chunks) + a ragged tail (rolling fallback).
  std::vector<std::vector<char_t>> qs, ss;
  std::vector<seq_pair> pairs;
  for (int i = 0; i < 20; ++i) {
    qs.push_back(test::random_codes(96, 100 + i));
    ss.push_back(test::random_codes(96, 200 + i));
  }
  qs.push_back(test::random_codes(57, 300));
  ss.push_back(test::random_codes(71, 301));
  for (std::size_t i = 0; i < qs.size(); ++i)
    pairs.push_back({view(qs[i]), view(ss[i])});

  for (const bool traceback : {false, true}) {
    align_options o = serial_opts();
    o.want_alignment = traceback;
    aligner a(o);
    std::vector<alignment_result> out;
    for (int i = 0; i < 3; ++i) a.align_batch_into(pairs, out);
    const auto n = allocs_during([&] {
      for (int i = 0; i < 5; ++i) a.align_batch_into(pairs, out);
    });
    EXPECT_EQ(n, 0u) << (traceback ? "batch traceback" : "batch score");
  }
}

TEST(AllocSteadyState, ReserveMakesFirstScorePassAllocationFree) {
  const auto q = test::random_codes(512, 17);
  const auto s = test::random_codes(480, 18);
  align_options o = serial_opts();
  o.tile = 128;
  aligner a(o);
  a.reserve(512, 480);  // the plan's exact footprint pre-sizes the arena
  alignment_result out;
  const auto n = allocs_during([&] { a.align_into(view(q), view(s), out); });
  EXPECT_EQ(n, 0u) << "plan_bytes under-estimated the route's footprint";
  EXPECT_GT(a.workspace_bytes(), 0u);
}

TEST(AllocSteadyState, PlanReportsFootprintAndVariant) {
  aligner a(serial_opts());
  const auto p = a.plan(1000, 1000);
  EXPECT_STREQ(p.route, "tiled_score");
  EXPECT_GT(p.workspace_bytes, 0u);
  EXPECT_STREQ(p.variant, backend_name(serial_opts()));
  a.shrink();
  EXPECT_EQ(a.workspace_bytes(), 0u);
}

TEST(AllocSteadyState, OneShotAlignReusesThreadLocalWorkspace) {
  const auto q = test::random_codes(300, 19);
  const auto s = test::random_codes(280, 20);
  const align_options o = serial_opts();
  for (int i = 0; i < 3; ++i) (void)align(view(q), view(s), o);
  const auto n = allocs_during([&] {
    for (int i = 0; i < 5; ++i) (void)align(view(q), view(s), o);
  });
  EXPECT_EQ(n, 0u) << "one-shot align() should ride the thread-local "
                      "aligner's warm workspace";
}

TEST(AllocSteadyState, CAlignerHandleScoresWithoutAllocating) {
  anyseq_aligner* a = anyseq_aligner_create();
  ASSERT_NE(a, nullptr);
  for (int i = 0; i < 3; ++i)
    (void)anyseq_aligner_global_score(a, "ACGTACGTACGTACGT",
                                      "ACGTCGTACGTTACGT", 2, -1, -1);
  const auto n = allocs_during([&] {
    for (int i = 0; i < 5; ++i)
      (void)anyseq_aligner_global_score(a, "ACGTACGTACGTACGT",
                                        "ACGTCGTACGTTACGT", 2, -1, -1);
  });
  EXPECT_EQ(n, 0u);
  EXPECT_GT(anyseq_aligner_workspace_bytes(a), 0u);
  anyseq_aligner_shrink(a);
  anyseq_aligner_destroy(a);
}

/// Service steady state: score-only traffic must be allocation-free
/// across submit -> batcher -> execute -> complete -> get, on every
/// participating thread.  Runs the whole cycle to quiescence inside the
/// measured window, so batcher/pool-thread allocations are counted too.
TEST(AllocSteadyState, ServiceSubmitCompleteScoreOnly) {
  const auto q = test::random_codes(96, 21);
  const auto s = test::random_codes(96, 23);
  service::config cfg;
  cfg.max_batch = 8;
  cfg.queue_capacity = 64;
  cfg.max_inflight_batches = 1;  // one exec unit: deterministic warm-up
  service::aligner svc(cfg);

  align_options o = serial_opts();  // global score-only -> batch_score
  auto cycle = [&] {
    service::ticket ts[8];
    for (int k = 0; k < 8; ++k) ts[k] = svc.submit(view(q), view(s), o);
    for (auto& t : ts) {
      const auto r = t.get();
      ASSERT_EQ(r.q_end, 96);
    }
  };
  // Warm-up covers both execute branches: forced 1-item batches (solo /
  // tiled path) and full batches (SIMD batch path) — the batcher's
  // linger makes the split timing-dependent, so both must be warm.
  for (int i = 0; i < 4; ++i) {
    auto t = svc.submit(view(q), view(s), o);
    ASSERT_EQ(t.get().q_end, 96);
  }
  for (int i = 0; i < 6; ++i) cycle();  // warm slots, rings, arena, pool
  const auto n = allocs_during([&] {
    for (int i = 0; i < 5; ++i) cycle();
  });
  EXPECT_EQ(n, 0u) << "service submit/complete allocated in steady state";
}

TEST(AllocSteadyState, ServiceDeadlinesAndFaultHooksStayBranchOnly) {
  // The robustness machinery rides the happy path on every request:
  // deadline fields and shed checks, the quarantine's relaxed-load gate,
  // and the fault-injection hook points (compiled in by default, no
  // schedule armed).  All of it must stay branch-only — zero
  // steady-state allocations even with a real deadline attached.
  const auto q = test::random_codes(96, 27);
  const auto s = test::random_codes(96, 29);
  service::config cfg;
  cfg.max_batch = 8;
  cfg.queue_capacity = 64;
  cfg.max_inflight_batches = 1;
  service::aligner svc(cfg);

  align_options o = serial_opts();
  auto cycle = [&] {
    service::submit_options so;
    so.deadline = std::chrono::steady_clock::now() + std::chrono::hours(1);
    service::ticket ts[8];
    for (int k = 0; k < 8; ++k) ts[k] = svc.submit(view(q), view(s), o, so);
    for (auto& t : ts) {
      // wait_for is part of the steady-state surface too.
      ASSERT_TRUE(t.wait_for(std::chrono::microseconds(60'000'000)));
      const auto r = t.get();
      ASSERT_EQ(r.q_end, 96);
    }
  };
  for (int i = 0; i < 4; ++i) {
    auto t = svc.submit(view(q), view(s), o);
    ASSERT_EQ(t.get().q_end, 96);
  }
  for (int i = 0; i < 6; ++i) cycle();
  const auto n = allocs_during([&] {
    for (int i = 0; i < 5; ++i) cycle();
  });
  EXPECT_EQ(n, 0u) << "deadline/hook machinery allocated in steady state";
}

/// Cache-hit path: once the response cache holds an entry, a hit cycle
/// (submit -> lookup -> copy-out -> complete-on-the-spot -> get) must be
/// allocation-free.  Hits never touch the ring or the batcher, so the
/// whole path runs on the submitting thread.
TEST(AllocSteadyState, ServiceCacheHitScoreOnly) {
  const auto q = test::random_codes(96, 31);
  const auto s = test::random_codes(96, 37);
  service::config cfg;
  cfg.max_batch = 8;
  cfg.queue_capacity = 64;
  cfg.max_inflight_batches = 1;
  cfg.cache_capacity = 32;
  service::aligner svc(cfg);

  align_options o = serial_opts();
  {
    auto t = svc.submit(view(q), view(s), o);  // miss: computes + inserts
    ASSERT_EQ(t.get().q_end, 96);
  }
  for (int i = 0; i < 3; ++i) {  // warm the hit path (slot reuse, etc.)
    auto t = svc.submit(view(q), view(s), o);
    ASSERT_EQ(t.get().q_end, 96);
  }
  const auto n = allocs_during([&] {
    for (int i = 0; i < 16; ++i) {
      auto t = svc.submit(view(q), view(s), o);
      ASSERT_EQ(t.get().q_end, 96);
    }
  });
  EXPECT_EQ(n, 0u) << "cache-hit path allocated in steady state";
  EXPECT_GE(svc.stats().cache_hits, 19u);
}

/// Tracing armed: recording into the per-thread rings is part of the
/// submit/complete hot path when a collector is armed, and it must be
/// allocation-free — rings are preallocated at collector construction
/// and the thread binding is a POD thread_local.
TEST(AllocSteadyState, ServiceTracingArmedScoreOnly) {
  const auto q = test::random_codes(96, 41);
  const auto s = test::random_codes(96, 43);
  service::config cfg;
  cfg.max_batch = 8;
  cfg.queue_capacity = 64;
  cfg.max_inflight_batches = 1;
  service::aligner svc(cfg);

  service::trace::collector col;  // allocates here, never on record
  service::trace::arm(col);

  align_options o = serial_opts();
  auto cycle = [&] {
    service::ticket ts[8];
    for (int k = 0; k < 8; ++k) ts[k] = svc.submit(view(q), view(s), o);
    for (auto& t : ts) {
      const auto r = t.get();
      ASSERT_EQ(r.q_end, 96);
    }
  };
  for (int i = 0; i < 4; ++i) {
    auto t = svc.submit(view(q), view(s), o);
    ASSERT_EQ(t.get().q_end, 96);
  }
  for (int i = 0; i < 6; ++i) cycle();
  const auto n = allocs_during([&] {
    for (int i = 0; i < 5; ++i) cycle();
  });
  EXPECT_EQ(n, 0u) << "armed tracing allocated in steady state";
  service::trace::disarm();
#if ANYSEQ_TRACING
  // The cycles really were traced: submit + complete spans at minimum.
  EXPECT_GT(col.size(), 0u);
#else
  EXPECT_EQ(col.size(), 0u);  // emission sites compiled out
#endif
}

/// Tracing disarmed (the default): the hook sites are one relaxed load
/// each and must add zero allocations — including right after an
/// arm/disarm transition, when threads still hold stale ring bindings.
TEST(AllocSteadyState, ServiceTracingDisarmedScoreOnly) {
  const auto q = test::random_codes(96, 47);
  const auto s = test::random_codes(96, 53);
  service::config cfg;
  cfg.max_batch = 8;
  cfg.queue_capacity = 64;
  cfg.max_inflight_batches = 1;
  service::aligner svc(cfg);

  {
    // Arm and disarm once so the steady-state window below runs with
    // stale thread bindings, the worst case for the disarmed path.
    service::trace::collector col;
    service::trace::arm(col);
    align_options o = serial_opts();
    auto t = svc.submit(view(q), view(s), o);
    ASSERT_EQ(t.get().q_end, 96);
    service::trace::disarm();
  }

  align_options o = serial_opts();
  auto cycle = [&] {
    service::ticket ts[8];
    for (int k = 0; k < 8; ++k) ts[k] = svc.submit(view(q), view(s), o);
    for (auto& t : ts) {
      const auto r = t.get();
      ASSERT_EQ(r.q_end, 96);
    }
  };
  for (int i = 0; i < 4; ++i) {
    auto t = svc.submit(view(q), view(s), o);
    ASSERT_EQ(t.get().q_end, 96);
  }
  for (int i = 0; i < 6; ++i) cycle();
  const auto n = allocs_during([&] {
    for (int i = 0; i < 5; ++i) cycle();
  });
  EXPECT_EQ(n, 0u) << "disarmed tracing hooks allocated in steady state";
}

/// Cache-miss path under eviction pressure: a working set larger than
/// the cache keeps inserting and clock-evicting, and once every entry's
/// key/result buffers have warmed to the working set's shapes the whole
/// submit -> execute -> insert -> evict -> get cycle allocates nothing.
TEST(AllocSteadyState, ServiceCacheMissEvictionRecyclesEntries) {
  constexpr int n_pairs = 48;
  std::vector<std::vector<char_t>> qs, ss;
  for (int i = 0; i < n_pairs; ++i) {
    qs.push_back(test::random_codes(96, 100 + i));
    ss.push_back(test::random_codes(96, 200 + i));
  }
  service::config cfg;
  cfg.max_batch = 8;
  cfg.queue_capacity = 64;
  cfg.max_inflight_batches = 1;
  cfg.cache_capacity = 16;  // far smaller than the working set
  cfg.cache_shards = 1;
  service::aligner svc(cfg);

  align_options o = serial_opts();
  auto sweep = [&] {
    for (int i = 0; i < n_pairs; ++i) {
      auto t = svc.submit(view(qs[i]), view(ss[i]), o);
      ASSERT_EQ(t.get().q_end, 96);
    }
  };
  for (int i = 0; i < 6; ++i) sweep();  // warm slots, arena, cache entries
  ASSERT_NE(svc.cache(), nullptr);
  ASSERT_GT(svc.cache()->stats().evictions, 0u) << "test must evict";
  const auto n = allocs_during([&] {
    for (int i = 0; i < 3; ++i) sweep();
  });
  EXPECT_EQ(n, 0u)
      << "cache miss/insert/evict cycle allocated in steady state";
}

/// The thread pool's job ring must stop growing once it has seen the
/// peak backlog — enqueueing small trivial closures is allocation-free.
TEST(AllocSteadyState, ThreadPoolJobRingSteadyState) {
  parallel::thread_pool pool(1);
  std::atomic<int> count{0};
  auto burst = [&] {
    for (int i = 0; i < 64; ++i) pool.run([&count] { ++count; });
    pool.wait_idle();
  };
  burst();  // ring grows to the 64-job backlog
  const auto cap = pool.ring_capacity();
  const auto n = allocs_during([&] {
    for (int i = 0; i < 5; ++i) burst();
  });
  EXPECT_EQ(n, 0u) << "thread_pool::run allocated on the hot path";
  EXPECT_EQ(pool.ring_capacity(), cap);
  EXPECT_EQ(count.load(), 6 * 64);
}

}  // namespace
}  // namespace anyseq
