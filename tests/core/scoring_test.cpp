#include "core/scoring.hpp"

#include <gtest/gtest.h>

#include "core/alphabet.hpp"

namespace anyseq {
namespace {

TEST(SimpleScoring, MatchMismatch) {
  constexpr simple_scoring sc{2, -1};
  EXPECT_EQ((sc.subst<score_t>(char_t{0}, char_t{0})), 2);
  EXPECT_EQ((sc.subst<score_t>(char_t{0}, char_t{3})), -1);
  EXPECT_EQ(sc.max_abs_unit(), 2);
}

TEST(SimpleScoring, NegativeMatchAllowed) {
  constexpr simple_scoring sc{-3, -7};
  EXPECT_EQ((sc.subst<score_t>(char_t{1}, char_t{1})), -3);
  EXPECT_EQ(sc.max_abs_unit(), 7);
}

TEST(SimpleScoring, WorksInConstexprContext) {
  constexpr simple_scoring sc{5, -4};
  constexpr score_t v = sc.match + sc.mismatch;
  static_assert(v == 1);
  EXPECT_EQ(v, 1);
}

TEST(MatrixScoring, UniformEqualsSimple) {
  constexpr auto m = dna_matrix_scoring::uniform(3, -2);
  constexpr simple_scoring sc{3, -2};
  for (char_t a = 0; a < 5; ++a)
    for (char_t b = 0; b < 5; ++b)
      EXPECT_EQ((m.subst<score_t>(a, b)), (sc.subst<score_t>(a, b)))
          << int(a) << " vs " << int(b);
}

TEST(MatrixScoring, SetAndAt) {
  dna_matrix_scoring m;
  m.set(dna_a, dna_g, 7);
  EXPECT_EQ(m.at(dna_a, dna_g), 7);
  EXPECT_EQ(m.at(dna_g, dna_a), 0);  // not symmetric unless set
}

TEST(MatrixScoring, DefaultDnaMatrixShape) {
  constexpr auto m = dna_default_matrix();
  // Matches are best.
  EXPECT_EQ(m.at(dna_a, dna_a), 5);
  // Transitions are penalized less than transversions.
  EXPECT_GT(m.at(dna_a, dna_g), m.at(dna_a, dna_c));
  EXPECT_GT(m.at(dna_c, dna_t), m.at(dna_c, dna_g));
  // N is neutral.
  EXPECT_EQ(m.at(dna_n, dna_t), 0);
  EXPECT_EQ(m.at(dna_t, dna_n), 0);
}

TEST(MatrixScoring, MaxAbsUnit) {
  constexpr auto m = dna_default_matrix();
  EXPECT_EQ(m.max_abs_unit(), 5);
}

TEST(MatrixScoring, SubstViaTableLookup) {
  auto m = dna_matrix_scoring::uniform(1, -1);
  m.set(dna_a, dna_t, 9);
  EXPECT_EQ((m.subst<score_t>(dna_a, dna_t)), 9);
}

}  // namespace
}  // namespace anyseq
