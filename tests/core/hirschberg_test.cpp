#include "core/hirschberg.hpp"

#include <gtest/gtest.h>

#include "core/alphabet.hpp"
#include "core/full_engine.hpp"
#include "testutil.hpp"

namespace anyseq {
namespace {

using test::view;

template <class Gap>
void check_hirschberg(const std::vector<char_t>& q,
                      const std::vector<char_t>& s, const Gap& gap,
                      index_t base_cells, const char* label) {
  const simple_scoring sc{2, -1};
  auto full = full_align<align_kind::global>(view(q), view(s), gap, sc);
  auto hir = hirschberg_align(view(q), view(s), gap, sc, base_cells);
  EXPECT_EQ(hir.score, full.score) << label;
  // The alignment itself may differ (co-optimal paths) but must re-score
  // to the optimum and reproduce the inputs when gaps are stripped.
  const score_t re = rescore_alignment(
      hir.q_aligned, hir.s_aligned,
      [&sc](char a, char b) {
        return sc.subst<score_t>(dna_encode(a), dna_encode(b));
      },
      gap);
  EXPECT_EQ(re, hir.score) << label;
  std::string qp, sp;
  for (char c : hir.q_aligned)
    if (c != '-') qp.push_back(c);
  for (char c : hir.s_aligned)
    if (c != '-') sp.push_back(c);
  EXPECT_EQ(qp, dna_decode_all(q)) << label;
  EXPECT_EQ(sp, dna_decode_all(s)) << label;
}

TEST(Hirschberg, RandomPairsLinear) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    auto q = test::random_codes(40 + seed * 3, seed);
    auto s = test::mutate(q, seed + 50);
    check_hirschberg(q, s, linear_gap{-1}, 1, "linear deep recursion");
  }
}

TEST(Hirschberg, RandomPairsAffine) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    auto q = test::random_codes(35 + seed * 2, seed + 7);
    auto s = test::mutate(q, seed + 70, 0.08, 0.06);
    check_hirschberg(q, s, affine_gap{-3, -1}, 1, "affine deep recursion");
  }
}

TEST(Hirschberg, CutoffValuesAllAgree) {
  auto q = test::random_codes(60, 1);
  auto s = test::mutate(q, 2, 0.1, 0.05);
  for (index_t cells : {index_t{1}, index_t{16}, index_t{256}, index_t{4096},
                        index_t{1} << 20}) {
    check_hirschberg(q, s, affine_gap{-2, -1}, cells, "cutoff sweep");
  }
}

TEST(Hirschberg, LongGapCrossingTheCut) {
  // A single long deletion spanning the middle row stresses the E-join.
  auto q = dna_encode_all("ACGTACGTAAAAAAAAAAAAAAAAACGTACGT");
  auto s = dna_encode_all("ACGTACGTACGTACGT");
  check_hirschberg(q, s, affine_gap{-10, -1}, 1, "gap crossing cut");
}

TEST(Hirschberg, GapAtColumnZero) {
  // Optimal path consumes no subject characters in the upper half: the
  // vertical gap crosses the cut at column 0 (the ee[0]=hh[0] boundary).
  auto q = dna_encode_all("TTTTTTTTAC");
  auto s = dna_encode_all("AC");
  check_hirschberg(q, s, affine_gap{-8, -1}, 1, "gap at column 0");
}

TEST(Hirschberg, GapAtLastColumn) {
  auto q = dna_encode_all("ACTTTTTTTT");
  auto s = dna_encode_all("AC");
  check_hirschberg(q, s, affine_gap{-8, -1}, 1, "gap at column m");
}

TEST(Hirschberg, DegenerateShapes) {
  const simple_scoring sc{2, -1};
  std::vector<char_t> empty;
  auto a = dna_encode_all("ACGT");
  // empty vs empty
  auto r0 = hirschberg_align(view(empty), view(empty), linear_gap{-1}, sc);
  EXPECT_EQ(r0.score, 0);
  // empty vs s
  auto r1 = hirschberg_align(view(empty), view(a), affine_gap{-2, -1}, sc);
  EXPECT_EQ(r1.score, -6);
  EXPECT_EQ(r1.s_aligned, "ACGT");
  EXPECT_EQ(r1.q_aligned, "----");
  // q vs empty
  auto r2 = hirschberg_align(view(a), view(empty), affine_gap{-2, -1}, sc);
  EXPECT_EQ(r2.score, -6);
  // single characters
  auto c = dna_encode_all("A"), g = dna_encode_all("G");
  auto r3 = hirschberg_align(view(c), view(g), linear_gap{-1}, sc);
  EXPECT_EQ(r3.score, -1);  // mismatch beats two gaps
}

TEST(Hirschberg, SingleRowBaseCase) {
  // n == 1 exercises base_single_row directly (base_cells = 0 would never
  // trigger; force via tiny base and 1-row query).
  auto q = dna_encode_all("G");
  auto s = dna_encode_all("AAGAA");
  const simple_scoring sc{2, -1};
  auto r = hirschberg_align(view(q), view(s), affine_gap{-2, -1}, sc, 1);
  auto ref = full_align<align_kind::global>(view(q), view(s),
                                            affine_gap{-2, -1}, sc);
  EXPECT_EQ(r.score, ref.score);
}

TEST(Hirschberg, CellsAtMostDoubled) {
  auto q = test::random_codes(100, 9);
  auto s = test::random_codes(90, 10);
  auto r = hirschberg_align(view(q), view(s), affine_gap{-2, -1},
                            simple_scoring{2, -1}, 64);
  EXPECT_LE(r.cells, 2u * 100u * 90u + 100u + 90u);
  EXPECT_GE(r.cells, 100u * 90u);  // at least one full sweep
}

TEST(Hirschberg, MatchesFullOnHomopolymers) {
  // Many co-optimal paths: scores must still agree.
  auto q = dna_encode_all("AAAAAAAAAA");
  auto s = dna_encode_all("AAAAA");
  check_hirschberg(q, s, linear_gap{-1}, 1, "homopolymer linear");
  check_hirschberg(q, s, affine_gap{-4, -1}, 1, "homopolymer affine");
}

TEST(Hirschberg, WideShortMatrix) {
  auto q = test::random_codes(4, 21);
  auto s = test::random_codes(200, 22);
  check_hirschberg(q, s, affine_gap{-2, -1}, 1, "wide short");
}

TEST(Hirschberg, TallNarrowMatrix) {
  auto q = test::random_codes(200, 23);
  auto s = test::random_codes(4, 24);
  check_hirschberg(q, s, affine_gap{-2, -1}, 1, "tall narrow");
}

}  // namespace
}  // namespace anyseq
