#pragma once
/// Shared helpers for AnySeq tests: deterministic random sequences,
/// scoring-parameter grids, and oracle adapters.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "anyseq/anyseq.hpp"
#include "baselines/naive.hpp"
#include "core/alphabet.hpp"
#include "core/gap.hpp"
#include "core/scoring.hpp"
#include "core/types.hpp"
#include "simd/detect.hpp"
#include "stage/views.hpp"

namespace anyseq::test {

/// True if forcing backend `b` is expected to work on this binary/CPU
/// combination.  Tests sweeping backends skip SIMD variants the host
/// cannot run (align() would throw unsupported_backend_error for them —
/// that contract is covered by tests/simd/dispatch_test.cpp).
inline bool backend_runnable(backend b) {
  const auto f = simd::detect();
  switch (b) {
    case backend::simd_avx2:
      return simd::lanes_runnable(16, f);
    case backend::simd_avx512:
      return simd::lanes_runnable(32, f);
    default:
      return true;
  }
}

/// Deterministic random DNA codes (0..3; sprinkle N with n_rate).
inline std::vector<char_t> random_codes(std::size_t n, std::uint64_t seed,
                                        double n_rate = 0.0) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> base(0, 3);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<char_t> out(n);
  for (auto& c : out)
    c = (n_rate > 0 && unit(rng) < n_rate) ? dna_n
                                           : static_cast<char_t>(base(rng));
  return out;
}

/// A mutated copy: substitutions and short indels, for realistic pairs.
inline std::vector<char_t> mutate(const std::vector<char_t>& src,
                                  std::uint64_t seed, double sub_rate = 0.05,
                                  double indel_rate = 0.02) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int> base(0, 3);
  std::uniform_int_distribution<int> len(1, 3);
  std::vector<char_t> out;
  out.reserve(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    const double r = unit(rng);
    if (r < indel_rate / 2) {
      for (int k = len(rng); k > 0; --k)
        out.push_back(static_cast<char_t>(base(rng)));  // insertion
      out.push_back(src[i]);
    } else if (r < indel_rate) {
      continue;  // deletion
    } else if (r < indel_rate + sub_rate) {
      out.push_back(static_cast<char_t>(base(rng)));
    } else {
      out.push_back(src[i]);
    }
  }
  return out;
}

inline stage::seq_view view(const std::vector<char_t>& v) {
  return {v.data(), static_cast<index_t>(v.size())};
}

/// Oracle parameter bundle matching (kind, linear gap).
inline baselines::naive_params oracle_linear(align_kind k, score_t match,
                                             score_t mismatch, score_t gap) {
  baselines::naive_params p;
  p.kind = k;
  p.match = match;
  p.mismatch = mismatch;
  p.gap_open = 0;
  p.gap_extend = gap;
  return p;
}

/// Oracle parameter bundle matching (kind, affine gap).
inline baselines::naive_params oracle_affine(align_kind k, score_t match,
                                             score_t mismatch, score_t open,
                                             score_t extend) {
  baselines::naive_params p;
  p.kind = k;
  p.match = match;
  p.mismatch = mismatch;
  p.gap_open = open;
  p.gap_extend = extend;
  return p;
}

/// All four alignment kinds, for parameterized sweeps.
inline constexpr align_kind all_kinds[] = {
    align_kind::global, align_kind::local, align_kind::semiglobal,
    align_kind::extension};

/// The paper's benchmark scoring: +2 match, -1 mismatch, linear -1 /
/// affine (-2, -1).
inline constexpr simple_scoring paper_scoring{2, -1};
inline constexpr linear_gap paper_linear{-1};
inline constexpr affine_gap paper_affine{-2, -1};

}  // namespace anyseq::test
