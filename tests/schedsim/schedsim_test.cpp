#include "schedsim/schedsim.hpp"

#include <gtest/gtest.h>

namespace anyseq::schedsim {
namespace {

using parallel::grid_dims;

sim_params clean() {
  sim_params p;
  p.tile_cost_us = 10.0;
  p.queue_overhead_us = 0.0;
  p.barrier_cost_us = 0.0;
  return p;
}

TEST(SchedSim, SingleCoreMakespanEqualsTotalWork) {
  const grid_dims g{8, 8};
  auto d = simulate_dynamic(std::span(&g, 1), 1, clean());
  EXPECT_DOUBLE_EQ(d.makespan_us, 64 * 10.0);
  EXPECT_DOUBLE_EQ(d.efficiency, 1.0);
  auto s = simulate_static(std::span(&g, 1), 1, clean());
  EXPECT_DOUBLE_EQ(s.makespan_us, 64 * 10.0);
  EXPECT_DOUBLE_EQ(s.efficiency, 1.0);
}

TEST(SchedSim, CriticalPathLowerBoundRespected) {
  // A G x G grid has a critical path of 2G-1 tiles; no core count beats it.
  const grid_dims g{16, 16};
  for (int cores : {4, 16, 64, 1024}) {
    auto d = simulate_dynamic(std::span(&g, 1), cores, clean());
    EXPECT_GE(d.makespan_us, (2 * 16 - 1) * 10.0 - 1e-9) << cores;
  }
}

TEST(SchedSim, InfiniteCoresReachCriticalPath) {
  const grid_dims g{12, 12};
  auto d = simulate_dynamic(std::span(&g, 1), 4096, clean());
  EXPECT_DOUBLE_EQ(d.makespan_us, (2 * 12 - 1) * 10.0);
}

TEST(SchedSim, DynamicNeverSlowerThanStatic) {
  // With equal overheads the dynamic policy dominates: it never waits at
  // a barrier the static policy imposes.
  for (index_t size : {4, 8, 24, 48}) {
    const grid_dims g{size, size};
    for (int cores : {2, 4, 8, 16, 32}) {
      auto d = simulate_dynamic(std::span(&g, 1), cores, clean());
      auto s = simulate_static(std::span(&g, 1), cores, clean());
      EXPECT_LE(d.makespan_us, s.makespan_us + 1e-9)
          << size << "x" << size << " cores " << cores;
    }
  }
}

TEST(SchedSim, EfficiencyDecreasesWithCores) {
  const grid_dims g{32, 32};
  double prev = 1.1;
  for (int cores : {1, 2, 4, 8, 16, 32}) {
    auto d = simulate_dynamic(std::span(&g, 1), cores, clean());
    EXPECT_LE(d.efficiency, prev + 1e-9) << cores;
    prev = d.efficiency;
  }
}

TEST(SchedSim, StaticSuffersOnShortDiagonalsAndBarriers) {
  // Short diagonals quantize badly under the static policy, and its
  // per-diagonal barrier adds insult; dynamic keeps several diagonals in
  // flight and pays no barrier at all.
  const grid_dims g{16, 16};
  sim_params p = clean();
  p.barrier_cost_us = 20.0;
  auto d = simulate_dynamic(std::span(&g, 1), 8, p);
  auto s = simulate_static(std::span(&g, 1), 8, p);
  EXPECT_GT(d.efficiency, s.efficiency * 1.5);
  // Even without any barrier cost, dynamic still wins on imbalance alone.
  auto d0 = simulate_dynamic(std::span(&g, 1), 8, clean());
  auto s0 = simulate_static(std::span(&g, 1), 8, clean());
  EXPECT_GT(d0.efficiency, s0.efficiency);
}

TEST(SchedSim, BarrierCostHurtsStaticOnly) {
  const grid_dims g{16, 16};
  sim_params cheap = clean();
  sim_params costly = clean();
  costly.barrier_cost_us = 50.0;
  const auto s_cheap = simulate_static(std::span(&g, 1), 8, cheap);
  const auto s_costly = simulate_static(std::span(&g, 1), 8, costly);
  EXPECT_GT(s_costly.makespan_us, s_cheap.makespan_us);
  const auto d_cheap = simulate_dynamic(std::span(&g, 1), 8, cheap);
  const auto d_costly = simulate_dynamic(std::span(&g, 1), 8, costly);
  EXPECT_DOUBLE_EQ(d_cheap.makespan_us, d_costly.makespan_us);
}

TEST(SchedSim, MultipleGridsOverlapUnderDynamic) {
  // Four alignments at once (paper Fig. 3): dynamic interleaves them and
  // fills the ramp-up/down idle slots; static runs them back to back.
  std::vector<grid_dims> grids(4, grid_dims{12, 12});
  auto d = simulate_dynamic(std::span(grids), 16, clean());
  auto s = simulate_static(std::span(grids), 16, clean());
  EXPECT_GT(d.efficiency, s.efficiency * 1.5);
}

TEST(SchedSim, Fig6ShapeReproduced) {
  // The paper: dynamic ~75% / ~65% efficiency at 16 / 32 threads, static
  // ~15% / ~8%.  With a realistic grid (long genomes, 512^2-cell tiles ->
  // big grids) and measured-order overheads, the simulated shape must
  // match: dynamic high and slowly degrading, static far below with
  // near-halving efficiency from 16 to 32.
  const grid_dims g{64, 64};
  sim_params p;
  p.tile_cost_us = 40.0;
  p.queue_overhead_us = 0.5;
  p.barrier_cost_us = 200.0;  // per-diagonal barrier across many threads
  auto s16 = simulate_static(std::span(&g, 1), 16, p);
  auto s32 = simulate_static(std::span(&g, 1), 32, p);
  auto d16 = simulate_dynamic(std::span(&g, 1), 16, p);
  auto d32 = simulate_dynamic(std::span(&g, 1), 32, p);
  EXPECT_GT(d16.efficiency, 0.6);
  EXPECT_GT(d32.efficiency, 0.5);
  EXPECT_LT(s16.efficiency, 0.5);
  EXPECT_LT(s32.efficiency, s16.efficiency);
  EXPECT_GT(d16.efficiency, 3 * s16.efficiency);
}

TEST(SchedSim, ScalingCurveCoversRequestedCores) {
  const grid_dims g{16, 16};
  const int cores[] = {1, 2, 4, 8};
  auto curve = scaling_curve(std::span(&g, 1), std::span(cores), clean());
  ASSERT_EQ(curve.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(curve[i].cores, cores[i]);
}

TEST(SchedSim, EmptyGrids) {
  auto d = simulate_dynamic({}, 4, clean());
  EXPECT_EQ(d.tiles, 0u);
  EXPECT_DOUBLE_EQ(d.makespan_us, 0.0);
}

}  // namespace
}  // namespace anyseq::schedsim
