#include "gpusim/runtime.hpp"

#include <gtest/gtest.h>

#include "gpusim/model.hpp"

namespace anyseq::gpusim {
namespace {

TEST(GpuRuntime, LaunchRunsEveryBlock) {
  device dev;
  std::vector<int> seen;
  launch(dev, 5, 4, [&](block_context& ctx) {
    seen.push_back(ctx.block_idx());
    EXPECT_EQ(ctx.block_dim(), 4);
  });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(dev.counters().kernel_launches, 1u);
  EXPECT_EQ(dev.counters().blocks, 5u);
}

TEST(GpuRuntime, ThreadsPhaseVisitsAllThreadsInOrder) {
  device dev;
  launch(dev, 1, 8, [&](block_context& ctx) {
    std::vector<int> order;
    ctx.threads([&](int t) { order.push_back(t); });
    EXPECT_EQ(order.size(), 8u);
    for (int t = 0; t < 8; ++t) EXPECT_EQ(order[t], t);
  });
  EXPECT_EQ(dev.counters().thread_phases, 1u);
}

TEST(GpuRuntime, SharedMemoryAccounted) {
  device dev;
  launch(dev, 1, 1, [&](block_context& ctx) {
    auto a = ctx.shared<score_t>(100);
    auto b = ctx.shared<char_t>(64);
    EXPECT_EQ(a.size(), 100u);
    EXPECT_EQ(b.size(), 64u);
    EXPECT_EQ(ctx.shared_bytes(), 400u + 64u);
  });
  EXPECT_EQ(dev.counters().shared_accesses, 164u);
}

TEST(GpuRuntime, CoalescedWarpIsOneTransactionPerSegment) {
  device dev;
  // 32 consecutive 4-byte words = 128 bytes = 1 segment (aligned base).
  std::vector<std::uint64_t> addrs;
  for (int i = 0; i < 32; ++i) addrs.push_back(1024 + i * 4);
  dev.log_warp_access(addrs, 4, false);
  EXPECT_EQ(dev.counters().global_read_trans, 1u);
}

TEST(GpuRuntime, StridedWarpCostsManyTransactions) {
  device dev;
  // 32 words strided by 512 bytes: every lane hits its own segment.
  std::vector<std::uint64_t> addrs;
  for (int i = 0; i < 32; ++i) addrs.push_back(i * 512);
  dev.log_warp_access(addrs, 4, false);
  EXPECT_EQ(dev.counters().global_read_trans, 32u);
}

TEST(GpuRuntime, RangeAccessSplitsIntoWarps) {
  device dev;
  dev.log_range_access(0, 64, 4, 4, true);  // 64 words = 2 warps, coalesced
  EXPECT_EQ(dev.counters().global_write_trans, 2u);
  EXPECT_EQ(dev.counters().global_bytes, 256u);
}

TEST(GpuRuntime, ResetClearsCounters) {
  device dev;
  dev.log_cells(100);
  dev.reset_counters();
  EXPECT_EQ(dev.counters().cells, 0u);
}

TEST(GpuModel, ComputeBoundWhenTrafficTiny) {
  device_counters c;
  c.cells = 1'000'000'000;  // 1 Gcell, almost no memory traffic
  c.global_read_trans = 10;
  gpu_model m;
  auto r = estimate(c, m);
  EXPECT_GT(r.compute_ms, r.memory_ms);
  EXPECT_GT(r.gcups, 50.0);   // a Titan-V-like device exceeds 50 GCUPS
  EXPECT_LT(r.gcups, 1000.0); // and stays physical
}

TEST(GpuModel, MemoryBoundWhenTrafficHuge) {
  device_counters c;
  c.cells = 1'000'000;
  c.global_read_trans = 100'000'000;  // 12.8 GB of reads
  gpu_model m;
  auto r = estimate(c, m);
  EXPECT_GT(r.memory_ms, r.compute_ms);
}

TEST(GpuModel, LaunchOverheadAdds) {
  device_counters c;
  c.cells = 1000;
  c.kernel_launches = 1000;
  gpu_model m;
  auto r = estimate(c, m);
  EXPECT_GE(r.launch_ms, 4.9);
}

}  // namespace
}  // namespace anyseq::gpusim
