#include "gpusim/gpu_engine.hpp"

#include <gtest/gtest.h>

#include "core/full_engine.hpp"
#include "testutil.hpp"

namespace anyseq::gpusim {
namespace {

using test::view;

template <align_kind K, class Gap>
void gpu_matches_reference(index_t n, index_t m, const Gap& gap,
                           std::uint64_t seed, gpu_config cfg) {
  auto q = test::random_codes(n, seed);
  auto s = test::random_codes(m, seed + 3);
  const simple_scoring sc{2, -1};
  device dev;
  gpu_engine<K, Gap, simple_scoring> eng(dev, gap, sc, cfg);
  const auto got = eng.score(view(q), view(s));
  const auto want = rolling_score<K>(view(q), view(s), gap, sc);
  ASSERT_EQ(got.score, want.score) << to_string(K) << " seed " << seed;
}

TEST(GpuEngine, GlobalLinearBitExact) {
  gpu_matches_reference<align_kind::global>(200, 230, linear_gap{-1}, 1,
                                            {64, 64, 16});
}

TEST(GpuEngine, GlobalAffineBitExact) {
  gpu_matches_reference<align_kind::global>(190, 170, affine_gap{-2, -1}, 2,
                                            {48, 64, 8});
}

TEST(GpuEngine, LocalAffineBitExact) {
  gpu_matches_reference<align_kind::local>(150, 150, affine_gap{-3, -1}, 3,
                                           {32, 32, 8});
}

TEST(GpuEngine, SemiglobalLinearBitExact) {
  gpu_matches_reference<align_kind::semiglobal>(120, 260, linear_gap{-1}, 4,
                                                {64, 32, 16});
}

TEST(GpuEngine, StripeHeightDoesNotChangeScores) {
  auto q = test::random_codes(180, 5);
  auto s = test::random_codes(175, 6);
  const simple_scoring sc{2, -1};
  score_t first = 0;
  for (int threads : {1, 4, 16, 64, 128}) {
    device dev;
    gpu_engine<align_kind::global, affine_gap, simple_scoring> eng(
        dev, affine_gap{-2, -1}, sc, {64, 64, threads});
    const auto r = eng.score(view(q), view(s));
    if (threads == 1)
      first = r.score;
    else
      EXPECT_EQ(r.score, first) << threads;
  }
}

TEST(GpuEngine, CountersAccumulate) {
  auto q = test::random_codes(256, 7);
  auto s = test::random_codes(256, 8);
  device dev;
  gpu_engine<align_kind::global, linear_gap, simple_scoring> eng(
      dev, linear_gap{-1}, simple_scoring{2, -1}, {64, 64, 32});
  (void)eng.score(view(q), view(s));
  const auto& c = dev.counters();
  EXPECT_EQ(c.cells, 256u * 256u);
  // 4x4 tile grid -> 7 diagonals -> 7 launches, 16 blocks.
  EXPECT_EQ(c.kernel_launches, 7u);
  EXPECT_EQ(c.blocks, 16u);
  EXPECT_GT(c.global_read_trans, 0u);
  EXPECT_GT(c.global_write_trans, 0u);
  EXPECT_GT(c.thread_phases, 0u);
}

TEST(GpuEngine, LastRowMatchesSerial) {
  auto q = test::random_codes(100, 9);
  auto s = test::random_codes(90, 10);
  const simple_scoring sc{2, -1};
  const affine_gap gap{-2, -1};
  std::vector<score_t> hh(91), ee(91), hh_ref(91), ee_ref(91);
  nw_last_row(view(q), view(s), gap, sc, 0, std::span(hh_ref),
              std::span(ee_ref));
  device dev;
  gpu_engine<align_kind::global, affine_gap, simple_scoring> eng(
      dev, gap, sc, {32, 32, 8});
  eng.last_row(view(q), view(s), 0, std::span(hh), std::span(ee));
  EXPECT_EQ(hh, hh_ref);
  EXPECT_EQ(ee, ee_ref);
}

TEST(GpuEngine, AlignTracebackRescores) {
  auto q = test::random_codes(300, 11);
  auto s = test::mutate(q, 12, 0.08, 0.05);
  const simple_scoring sc{2, -1};
  device dev;
  gpu_engine<align_kind::global, affine_gap, simple_scoring> eng(
      dev, affine_gap{-2, -1}, sc, {64, 64, 16});
  auto r = eng.align(view(q), view(s));
  auto want = full_align<align_kind::global>(view(q), view(s),
                                             affine_gap{-2, -1}, sc, false);
  EXPECT_EQ(r.score, want.score);
  const score_t re = rescore_alignment(
      r.q_aligned, r.s_aligned,
      [](char a, char b) { return a == b ? 2 : -1; }, affine_gap{-2, -1});
  EXPECT_EQ(re, r.score);
}

TEST(GpuEngine, BatchScoresMatchScalar) {
  std::vector<std::vector<char_t>> qs, ss;
  std::vector<tiled::pair_view> pairs;
  for (int i = 0; i < 10; ++i) {
    qs.push_back(test::random_codes(80, 100 + i));
    ss.push_back(test::random_codes(85, 200 + i));
  }
  for (int i = 0; i < 10; ++i) pairs.push_back({view(qs[i]), view(ss[i])});
  const simple_scoring sc{2, -1};
  device dev;
  gpu_engine<align_kind::global, linear_gap, simple_scoring> eng(
      dev, linear_gap{-1}, sc);
  auto rs = eng.batch(pairs, true);
  ASSERT_EQ(rs.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    const auto want = rolling_score<align_kind::global>(
        pairs[i].q, pairs[i].s, linear_gap{-1}, sc);
    EXPECT_EQ(rs[i].score, want.score) << i;
    EXPECT_TRUE(rs[i].has_alignment);
  }
  EXPECT_EQ(dev.counters().cells, 10u * 80u * 85u);
}

TEST(GpuEngine, TracebackCostsMoreTrafficThanScoreOnly) {
  std::vector<std::vector<char_t>> qs;
  std::vector<tiled::pair_view> pairs;
  for (int i = 0; i < 8; ++i) qs.push_back(test::random_codes(100, 300 + i));
  for (int i = 0; i < 8; ++i) pairs.push_back({view(qs[i]), view(qs[i])});
  const simple_scoring sc{2, -1};
  device d1, d2;
  gpu_engine<align_kind::global, linear_gap, simple_scoring> e1(
      d1, linear_gap{-1}, sc);
  gpu_engine<align_kind::global, linear_gap, simple_scoring> e2(
      d2, linear_gap{-1}, sc);
  (void)e1.batch(pairs, false);
  (void)e2.batch(pairs, true);
  EXPECT_GT(d2.counters().global_write_trans,
            d1.counters().global_write_trans);
}

TEST(GpuEngine, RejectsBadConfig) {
  device dev;
  EXPECT_THROW((gpu_engine<align_kind::global, linear_gap, simple_scoring>(
                   dev, linear_gap{-1}, simple_scoring{2, -1}, {0, 64, 8})),
               invalid_argument_error);
}

}  // namespace
}  // namespace anyseq::gpusim
