#include "fpgasim/systolic.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace anyseq::fpgasim {
namespace {

using test::view;

template <align_kind K, class Gap>
void fpga_matches_reference(index_t n, index_t m, const Gap& gap,
                            std::uint64_t seed, int kpe) {
  auto q = test::random_codes(n, seed);
  auto s = test::random_codes(m, seed + 13);
  const simple_scoring sc{2, -1};
  fpga_config cfg;
  cfg.kpe = kpe;
  const auto got = systolic_score<K>(view(q), view(s), gap, sc, cfg);
  const auto want = rolling_score<K>(view(q), view(s), gap, sc);
  ASSERT_EQ(got.score, want.score)
      << to_string(K) << " kpe " << kpe << " seed " << seed;
}

TEST(Systolic, GlobalLinearBitExact) {
  for (int kpe : {1, 3, 16, 64, 128})
    fpga_matches_reference<align_kind::global>(150, 170, linear_gap{-1}, 1,
                                               kpe);
}

TEST(Systolic, GlobalAffineBitExact) {
  for (int kpe : {1, 7, 32, 256})
    fpga_matches_reference<align_kind::global>(130, 111, affine_gap{-2, -1},
                                               2, kpe);
}

TEST(Systolic, LocalBitExact) {
  for (int kpe : {4, 33})
    fpga_matches_reference<align_kind::local>(90, 120, affine_gap{-3, -1}, 3,
                                              kpe);
}

TEST(Systolic, SemiglobalBitExact) {
  for (int kpe : {8, 50})
    fpga_matches_reference<align_kind::semiglobal>(75, 140, linear_gap{-1},
                                                   4, kpe);
}

TEST(Systolic, QueryShorterThanArray) {
  fpga_matches_reference<align_kind::global>(10, 200, affine_gap{-2, -1}, 5,
                                             128);
}

TEST(Systolic, QueryMultipleStripesExactBoundary) {
  // n an exact multiple of K_PE exercises full stripes only.
  fpga_matches_reference<align_kind::global>(96, 120, linear_gap{-1}, 6, 32);
}

TEST(Systolic, CycleCountMatchesSystolicFormula) {
  auto q = test::random_codes(64, 7);
  auto s = test::random_codes(100, 8);
  fpga_config cfg;
  cfg.kpe = 32;
  const auto r = systolic_score<align_kind::global>(
      view(q), view(s), linear_gap{-1}, simple_scoring{2, -1}, cfg);
  // 2 stripes of 32 rows, each taking m + rows - 1 cycles.
  EXPECT_EQ(r.cycles, 2u * (100 + 32 - 1));
  EXPECT_EQ(r.cells, 6400u);
  EXPECT_GT(r.utilization, 0.7);
  EXPECT_LE(r.utilization, 1.0);
}

TEST(Systolic, GcupsApproachesPeakForLongSubject) {
  // Long subject amortizes the pipeline fill: GCUPS -> K_PE * f.
  auto q = test::random_codes(128, 9);
  auto s = test::random_codes(20000, 10);
  fpga_config cfg;  // 128 PEs at 187.5 MHz -> 24 GCUPS peak
  const auto r = systolic_score<align_kind::global>(
      view(q), view(s), linear_gap{-1}, simple_scoring{2, -1}, cfg);
  EXPECT_GT(r.gcups, 20.0);   // the paper reports ~20 GCUPS
  EXPECT_LE(r.gcups, 24.01);  // cannot beat K_PE * f
}

TEST(Systolic, GapSchemeDoesNotChangeCycleCount) {
  // Paper §V: "The runtime is not affected by the gap penalty scheme as
  // the computation happens in a single clock-cycle nonetheless."
  auto q = test::random_codes(100, 11);
  auto s = test::random_codes(300, 12);
  const auto lin = systolic_score<align_kind::global>(
      view(q), view(s), linear_gap{-1}, simple_scoring{2, -1});
  const auto aff = systolic_score<align_kind::global>(
      view(q), view(s), affine_gap{-2, -1}, simple_scoring{2, -1});
  EXPECT_EQ(lin.cycles, aff.cycles);
}

TEST(Systolic, EnergyEfficiencyBeatsCpuAndGpuSpecs) {
  // Table II shape: ZCU104 GCUPS/W is a multiple of the CPU's ~1.0 and
  // the GPU's ~0.76.
  auto q = test::random_codes(128, 13);
  auto s = test::random_codes(10000, 14);
  const auto r = systolic_score<align_kind::global>(
      view(q), view(s), linear_gap{-1}, simple_scoring{2, -1});
  EXPECT_GT(r.gcups_per_watt, 3.0);
}

TEST(Systolic, EmptyInputs) {
  std::vector<char_t> e;
  auto s = test::random_codes(5, 15);
  const auto r = systolic_score<align_kind::global>(
      view(e), view(s), linear_gap{-1}, simple_scoring{2, -1});
  EXPECT_EQ(r.score, -5);
  const auto r2 = systolic_score<align_kind::local>(
      view(e), view(e), linear_gap{-1}, simple_scoring{2, -1});
  EXPECT_EQ(r2.score, 0);
}

TEST(Systolic, RejectsBadConfig) {
  auto q = test::random_codes(4, 16);
  fpga_config cfg;
  cfg.kpe = 0;
  EXPECT_THROW(systolic_score<align_kind::global>(view(q), view(q),
                                                  linear_gap{-1},
                                                  simple_scoring{2, -1}, cfg),
               invalid_argument_error);
}

}  // namespace
}  // namespace anyseq::fpgasim
