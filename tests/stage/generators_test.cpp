#include "stage/generators.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace anyseq::stage {
namespace {

TEST(Range, VisitsHalfOpenInterval) {
  std::vector<index_t> seen;
  range(2, 6, [&](index_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<index_t>{2, 3, 4, 5}));
}

TEST(Range, EmptyWhenDegenerate) {
  int count = 0;
  range(5, 5, [&](index_t) { ++count; });
  range(7, 3, [&](index_t) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(Unroll, CompileTimeTripCount) {
  std::vector<index_t> seen;
  unroll<4>(10, [&](index_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<index_t>{10, 11, 12, 13}));
}

TEST(Strip, FullChunksPlusRemainder) {
  std::vector<index_t> seen;
  strip<4>(0, 10, [&](index_t i) { seen.push_back(i); });
  ASSERT_EQ(seen.size(), 10u);
  for (index_t i = 0; i < 10; ++i) EXPECT_EQ(seen[i], i);
}

TEST(Combine, ComposesTwo1DGenerators) {
  auto loop2d = combine([](index_t a, index_t b, auto&& f) { range(a, b, f); },
                        [](index_t a, index_t b, auto&& f) { range(a, b, f); });
  std::vector<std::pair<index_t, index_t>> seen;
  loop2d(0, 2, 10, 12, [&](index_t y, index_t x) { seen.emplace_back(y, x); });
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen.front(), (std::pair<index_t, index_t>{0, 10}));
  EXPECT_EQ(seen.back(), (std::pair<index_t, index_t>{1, 11}));
}

TEST(Tile2d, CoversMatrixExactlyOnce) {
  constexpr index_t rows = 10, cols = 13, th = 4, tw = 5;
  std::vector<int> hits(rows * cols, 0);
  tile2d(rows, cols, th, tw,
         [&](index_t, index_t, index_t y0, index_t y1, index_t x0,
             index_t x1) {
           EXPECT_LE(y1 - y0, th);
           EXPECT_LE(x1 - x0, tw);
           for (index_t y = y0; y < y1; ++y)
             for (index_t x = x0; x < x1; ++x) ++hits[y * cols + x];
         });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Tile2d, EdgeTilesAreClipped) {
  std::vector<std::array<index_t, 4>> tiles;
  tile2d(5, 7, 4, 4, [&](index_t, index_t, index_t y0, index_t y1, index_t x0,
                         index_t x1) {
    tiles.push_back({y0, y1, x0, x1});
  });
  ASSERT_EQ(tiles.size(), 4u);  // 2x2 tile grid
  EXPECT_EQ(tiles.back()[1], 5);
  EXPECT_EQ(tiles.back()[3], 7);
}

TEST(Antidiagonals, VisitsEveryTileOnce) {
  constexpr index_t ty = 3, tx = 4;
  std::vector<int> hits(ty * tx, 0);
  antidiagonals(ty, tx, [&](index_t y, index_t x) { ++hits[y * tx + x]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Antidiagonals, DependenciesAlwaysVisitedBefore) {
  // Wavefront order: a tile's up/left neighbors appear strictly earlier.
  constexpr index_t ty = 5, tx = 6;
  std::vector<int> order(ty * tx, -1);
  int t = 0;
  antidiagonals(ty, tx, [&](index_t y, index_t x) { order[y * tx + x] = t++; });
  for (index_t y = 0; y < ty; ++y)
    for (index_t x = 0; x < tx; ++x) {
      if (y > 0) EXPECT_LT(order[(y - 1) * tx + x], order[y * tx + x]);
      if (x > 0) EXPECT_LT(order[y * tx + x - 1], order[y * tx + x]);
    }
}

TEST(TileCount, RoundsUp) {
  EXPECT_EQ(tile_count(10, 4), 3);
  EXPECT_EQ(tile_count(8, 4), 2);
  EXPECT_EQ(tile_count(1, 100), 1);
  EXPECT_EQ(tile_count(0, 4), 0);
}

}  // namespace
}  // namespace anyseq::stage
