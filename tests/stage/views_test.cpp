#include "stage/views.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/alphabet.hpp"

namespace anyseq::stage {
namespace {

TEST(SeqView, BasicAccess) {
  auto codes = dna_encode_all("ACGT");
  seq_view v(codes.data(), 4);
  EXPECT_EQ(v.size(), 4);
  EXPECT_EQ(v[0], dna_a);
  EXPECT_EQ(v[3], dna_t);
}

TEST(SeqView, SubView) {
  auto codes = dna_encode_all("ACGTACGT");
  seq_view v(codes.data(), 8);
  auto s = v.sub(2, 6);
  EXPECT_EQ(s.size(), 4);
  EXPECT_EQ(s[0], dna_g);
  EXPECT_EQ(s[3], dna_c);
}

TEST(RevView, ReversesIndexing) {
  auto codes = dna_encode_all("ACGT");
  rev_view r(seq_view{codes.data(), 4});
  EXPECT_EQ(r.size(), 4);
  EXPECT_EQ(r[0], dna_t);
  EXPECT_EQ(r[3], dna_a);
}

TEST(RevView, SubViewInReversedCoordinates) {
  auto codes = dna_encode_all("ACGTAA");
  rev_view r(seq_view{codes.data(), 6});  // AATGCA
  auto s = r.sub(1, 4);                   // ATG
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s[0], dna_a);
  EXPECT_EQ(s[1], dna_t);
  EXPECT_EQ(s[2], dna_g);
}

TEST(RevView, DoubleReverseIsIdentity) {
  auto codes = dna_encode_all("ACGTN");
  seq_view v(codes.data(), 5);
  rev_view r(v);
  for (index_t i = 0; i < 5; ++i) EXPECT_EQ(r[4 - i], v[i]);
}

TEST(MatrixView, ReadWrite) {
  std::vector<score_t> buf(12, 0);
  matrix_view<score_t> m(buf.data(), 3, 4);
  m.write(1, 2, 42);
  EXPECT_EQ(m.read(1, 2), 42);
  EXPECT_EQ(buf[1 * 4 + 2], 42);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
}

TEST(OffsetView, ShiftsOrigin) {
  std::vector<score_t> buf(20, 0);
  matrix_view<score_t> m(buf.data(), 4, 5);
  offset_view ov(m, 1, 2);
  ov.write(0, 0, 7);
  EXPECT_EQ(m.read(1, 2), 7);
  EXPECT_EQ(ov.read(0, 0), 7);
}

TEST(CyclicRowsView, WrapsRows) {
  std::vector<score_t> buf(2 * 3, 0);
  cyclic_rows_view<score_t> c(buf.data(), 2, 3);
  c.write(0, 1, 10);
  c.write(5, 1, 99);  // row 5 maps onto physical row 1
  EXPECT_EQ(c.read(0, 1), 10);
  EXPECT_EQ(c.read(2, 1), 10);  // row 2 aliases row 0
  EXPECT_EQ(c.read(1, 1), 99);
}

TEST(CoalescedView, RoundTripsThroughRotatedLayout) {
  constexpr index_t mem_h = 8, mem_w = 16;
  std::vector<score_t> buf(mem_h * mem_w, -1);
  coalesced_view<score_t> cv(buf.data(), mem_h, mem_w, 0, 0);
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 4; ++j)
      cv.write(i, j, static_cast<score_t>(i * 100 + j));
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 4; ++j)
      EXPECT_EQ(cv.read(i, j), i * 100 + j);
}

TEST(CoalescedView, AntiDiagonalIsRowContiguous) {
  // Cells on one anti-diagonal (i+j const) map into a single physical row:
  // that is the property that makes GPU accesses coalesced (paper §III-C).
  constexpr index_t mem_h = 8, mem_w = 16;
  std::vector<score_t> buf(mem_h * mem_w, 0);
  coalesced_view<score_t> cv(buf.data(), mem_h, mem_w, 0, 0);
  const index_t d = 5;
  index_t row = -1;
  for (index_t i = 0; i <= d; ++i) {
    const index_t j = d - i;
    const index_t r = cv.pos(i, j) / mem_w;
    if (row < 0) row = r;
    EXPECT_EQ(r, row) << "cell " << i << "," << j;
  }
}

}  // namespace
}  // namespace anyseq::stage
