#include "parallel/wavefront.hpp"

#include <gtest/gtest.h>

#include <map>
#include <mutex>

namespace anyseq::parallel {
namespace {

/// Kernel that records execution order and asserts dependencies.
struct recording_kernel {
  int l = 1;
  std::mutex m;
  std::map<std::tuple<int, int, int>, int> order;
  int counter = 0;
  std::uint64_t batched_tiles = 0;

  int batch_width() const { return l; }

  void note(tile_coord t) {
    std::lock_guard lock(m);
    order[{t.grid, t.ty, t.tx}] = counter++;
  }
  void run_single(tile_coord t, int /*worker*/) { note(t); }
  void run_block(std::span<const tile_coord> tiles, int /*worker*/) {
    for (const auto& t : tiles) note(t);
    std::lock_guard lock(m);
    batched_tiles += tiles.size();
  }

  void verify_dependencies(std::span<const grid_dims> grids) {
    for (std::size_t g = 0; g < grids.size(); ++g)
      for (index_t ty = 0; ty < grids[g].tiles_y; ++ty)
        for (index_t tx = 0; tx < grids[g].tiles_x; ++tx) {
          const int self = order.at({static_cast<int>(g),
                                     static_cast<int>(ty),
                                     static_cast<int>(tx)});
          if (ty > 0)
            EXPECT_LT(order.at({static_cast<int>(g), static_cast<int>(ty - 1),
                                static_cast<int>(tx)}),
                      self);
          if (tx > 0)
            EXPECT_LT(order.at({static_cast<int>(g), static_cast<int>(ty),
                                static_cast<int>(tx - 1)}),
                      self);
        }
  }
};

TEST(DepTracker, InitialDependencies) {
  grid_dims g{3, 4};
  dep_tracker deps(std::span(&g, 1));
  EXPECT_EQ(deps.total_tiles(), 12);
  // (0,1) has one dependency (left); releasing it makes it ready.
  EXPECT_TRUE(deps.release({0, 0, 1}));
  // (1,1) has two; both must be released.
  EXPECT_FALSE(deps.release({0, 1, 1}));
  EXPECT_TRUE(deps.release({0, 1, 1}));
}

TEST(DepTracker, OnFinishedEnablesNeighbors) {
  grid_dims g{2, 2};
  dep_tracker deps(std::span(&g, 1));
  std::vector<tile_coord> ready;
  deps.on_finished({0, 0, 0}, ready);
  // Both (0,1) and (1,0) depend only on (0,0).
  EXPECT_EQ(ready.size(), 2u);
}

class WavefrontBoth : public ::testing::TestWithParam<bool> {};

wavefront_stats run_scheduler(bool dynamic, int threads,
                              std::span<const grid_dims> grids,
                              recording_kernel& k) {
  return dynamic ? dynamic_wavefront::run(threads, grids, k)
                 : static_wavefront::run(threads, grids, k);
}

TEST_P(WavefrontBoth, EveryTileExecutedExactlyOnce) {
  const grid_dims g{7, 9};
  recording_kernel k;
  run_scheduler(GetParam(), 4, std::span(&g, 1), k);
  EXPECT_EQ(k.order.size(), 63u);
  EXPECT_EQ(k.counter, 63);
}

TEST_P(WavefrontBoth, DependencyOrderRespected) {
  const grid_dims g{6, 6};
  recording_kernel k;
  run_scheduler(GetParam(), 4, std::span(&g, 1), k);
  k.verify_dependencies(std::span(&g, 1));
}

TEST_P(WavefrontBoth, MultipleGridsAllComplete) {
  const grid_dims grids[] = {{3, 5}, {4, 4}, {1, 7}, {6, 2}};
  recording_kernel k;
  run_scheduler(GetParam(), 3, std::span(grids), k);
  EXPECT_EQ(k.counter, 15 + 16 + 7 + 12);
  k.verify_dependencies(std::span(grids));
}

TEST_P(WavefrontBoth, SingleThreadWorks) {
  const grid_dims g{5, 5};
  recording_kernel k;
  run_scheduler(GetParam(), 1, std::span(&g, 1), k);
  EXPECT_EQ(k.counter, 25);
  k.verify_dependencies(std::span(&g, 1));
}

TEST_P(WavefrontBoth, EmptyGridListIsNoop) {
  recording_kernel k;
  auto stats = run_scheduler(GetParam(), 2, {}, k);
  EXPECT_EQ(k.counter, 0);
  EXPECT_EQ(stats.blocks + stats.singles, 0u);
}

TEST_P(WavefrontBoth, OneByOneGrid) {
  const grid_dims g{1, 1};
  recording_kernel k;
  run_scheduler(GetParam(), 4, std::span(&g, 1), k);
  EXPECT_EQ(k.counter, 1);
}

TEST_P(WavefrontBoth, StatsAccountForEveryTile) {
  const grid_dims g{8, 8};
  recording_kernel k;
  k.l = 4;
  auto stats = run_scheduler(GetParam(), 2, std::span(&g, 1), k);
  EXPECT_EQ(stats.blocks * 4 + stats.singles, 64u);
  k.verify_dependencies(std::span(&g, 1));
}

INSTANTIATE_TEST_SUITE_P(DynamicAndStatic, WavefrontBoth,
                         ::testing::Values(true, false),
                         [](const auto& info) {
                           return info.param ? "dynamic" : "static";
                         });

TEST(DynamicWavefront, BatchesFormWhenManyGridsInFlight) {
  // With many small grids the queue holds >= l independent tiles most of
  // the time, so vector blocks must form (paper Fig. 3).
  std::vector<grid_dims> grids(16, grid_dims{4, 4});
  recording_kernel k;
  k.l = 4;
  auto stats = dynamic_wavefront::run(2, std::span(grids), k);
  EXPECT_GT(stats.blocks, 0u);
  EXPECT_EQ(stats.blocks * 4 + stats.singles, 16u * 16u);
}

}  // namespace
}  // namespace anyseq::parallel
