#include "parallel/work_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <thread>

#include "parallel/thread_pool.hpp"

namespace anyseq::parallel {
namespace {

TEST(MpmcQueue, FifoOrderSingleThread) {
  mpmc_queue<int> q;
  for (int i = 0; i < 5; ++i) q.push(i);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(MpmcQueue, PopAfterCloseDrainsThenEmpty) {
  mpmc_queue<int> q;
  q.push(1);
  q.close();
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, TryPopNTakesAtMostN) {
  mpmc_queue<int> q;
  for (int i = 0; i < 10; ++i) q.push(i);
  std::vector<int> out;
  EXPECT_EQ(q.try_pop_n(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.size(), 6u);
}

TEST(MpmcQueue, PopNBlocksUntilItemOrClose) {
  mpmc_queue<int> q;
  std::vector<int> out;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.push(7);
  });
  EXPECT_EQ(q.pop_n(out, 3), 1u);
  EXPECT_EQ(out[0], 7);
  producer.join();
}

TEST(MpmcQueue, CloseWakesConsumerBlockedInPopN) {
  // The service batcher's shutdown path: a consumer parked in pop_n on
  // an empty queue must wake on close() and report zero items.
  mpmc_queue<int> q;
  std::vector<int> out;
  std::thread consumer([&] { EXPECT_EQ(q.pop_n(out, 8), 0u); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  EXPECT_TRUE(out.empty());
}

TEST(MpmcQueue, CloseWakesEveryBlockedPopN) {
  mpmc_queue<int> q;
  constexpr int kConsumers = 4;
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&] {
      std::vector<int> out;
      EXPECT_EQ(q.pop_n(out, 4), 0u);
      ++woke;
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(woke.load(), kConsumers);
}

TEST(MpmcQueue, PopNDrainsRemainderAfterClose) {
  mpmc_queue<int> q;
  for (int i = 0; i < 5; ++i) q.push(i);
  q.close();
  std::vector<int> out;
  EXPECT_EQ(q.pop_n(out, 3), 3u);
  EXPECT_EQ(q.pop_n(out, 3), 2u);
  EXPECT_EQ(q.pop_n(out, 3), 0u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(MpmcQueue, ConcurrentPushManyTryPopNDeliversChunksInOrder) {
  // The batcher's ingest pattern: producers publish whole chunks with
  // push_many while consumers grab bounded runs with try_pop_n/pop_n.
  // Every item must arrive exactly once and per-producer FIFO order
  // must survive the races.
  mpmc_queue<int> q;
  constexpr int kProducers = 4, kConsumers = 4, kPer = 4000;
  constexpr int kTotal = kProducers * kPer;
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p)
    threads.emplace_back([&q, p] {
      std::vector<int> chunk;
      int next = 0;
      std::size_t chunk_len = 1;
      while (next < kPer) {
        chunk.clear();
        for (std::size_t k = 0; k < chunk_len && next < kPer; ++k)
          chunk.push_back(p * kPer + next++);
        q.push_many(chunk);
        chunk_len = chunk_len % 7 + 1;  // vary 1..7
      }
    });
  std::mutex seen_mutex;
  std::vector<std::vector<int>> seen(kProducers);
  std::atomic<int> taken{0};
  for (int c = 0; c < kConsumers; ++c)
    threads.emplace_back([&, c] {
      std::vector<int> got;
      while (taken.load() < kTotal) {
        got.clear();
        const std::size_t n =
            c % 2 == 0 ? q.try_pop_n(got, 5) : q.pop_n(got, 5);
        if (n == 0) {
          if (q.closed()) break;
          std::this_thread::yield();
          continue;
        }
        taken.fetch_add(static_cast<int>(n));
        std::lock_guard lock(seen_mutex);
        for (const int v : got) seen[v / kPer].push_back(v);
        if (taken.load() >= kTotal) q.close();
      }
    });
  for (auto& t : threads) t.join();
  int total_seen = 0;
  for (int p = 0; p < kProducers; ++p) {
    total_seen += static_cast<int>(seen[p].size());
    // Exactly-once delivery: sorted, each producer's values are exactly
    // p*kPer .. p*kPer+kPer-1 (no loss, no duplication).
    std::vector<int> sorted = seen[p];
    std::sort(sorted.begin(), sorted.end());
    ASSERT_EQ(sorted.size(), static_cast<std::size_t>(kPer));
    for (int i = 0; i < kPer; ++i) ASSERT_EQ(sorted[i], p * kPer + i);
  }
  EXPECT_EQ(total_seen, kTotal);
}

TEST(MpmcQueue, SingleConsumerSeesPerProducerFifoUnderPushMany) {
  // With one consumer the pop sequence is the queue order, so each
  // producer's items must appear strictly increasing even while chunked
  // push_many calls from 4 producers interleave.
  mpmc_queue<int> q;
  constexpr int kProducers = 4, kPer = 5000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&q, p] {
      std::vector<int> chunk;
      int next = 0;
      std::size_t chunk_len = 3;
      while (next < kPer) {
        chunk.clear();
        for (std::size_t k = 0; k < chunk_len && next < kPer; ++k)
          chunk.push_back(p * kPer + next++);
        q.push_many(chunk);
        chunk_len = chunk_len % 5 + 1;
      }
    });
  std::vector<int> last(kProducers, -1);
  int taken = 0;
  std::vector<int> got;
  while (taken < kProducers * kPer) {
    got.clear();
    const std::size_t n = q.pop_n(got, 7);
    taken += static_cast<int>(n);
    for (const int v : got) {
      const int p = v / kPer;
      ASSERT_GT(v, last[p]) << "per-producer FIFO order violated";
      last[p] = v;
    }
  }
  for (auto& t : producers) t.join();
  for (int p = 0; p < kProducers; ++p)
    EXPECT_EQ(last[p], p * kPer + kPer - 1);
}

TEST(MpmcQueue, PushManyEmptyIsANoOp) {
  mpmc_queue<int> q;
  q.push_many({});
  EXPECT_EQ(q.size(), 0u);
  q.push(1);
  q.push_many({});
  EXPECT_EQ(q.size(), 1u);
}

TEST(MpmcQueue, ManyProducersManyConsumersDeliverEverything) {
  mpmc_queue<int> q;
  constexpr int kProducers = 4, kConsumers = 4, kPer = 2500;
  std::atomic<long long> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p)
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPer; ++i) q.push(p * kPer + i);
    });
  for (int c = 0; c < kConsumers; ++c)
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        if (consumed.fetch_add(1) + 1 == kProducers * kPer) q.close();
      }
    });
  for (auto& t : threads) t.join();
  const long long n = kProducers * kPer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(TreiberStack, LifoOrderSingleThread) {
  treiber_stack<int> s(8);
  EXPECT_TRUE(s.empty());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(s.push(i));
  for (int i = 4; i >= 0; --i) EXPECT_EQ(s.try_pop().value(), i);
  EXPECT_FALSE(s.try_pop().has_value());
}

TEST(TreiberStack, CapacityExhaustionReportsFalse) {
  treiber_stack<int> s(2);
  EXPECT_TRUE(s.push(1));
  EXPECT_TRUE(s.push(2));
  EXPECT_FALSE(s.push(3));
  s.try_pop();
  EXPECT_TRUE(s.push(3));  // capacity recycles
}

TEST(TreiberStack, ZeroCapacity) {
  treiber_stack<int> s(0);
  EXPECT_FALSE(s.push(1));
  EXPECT_FALSE(s.try_pop().has_value());
}

TEST(TreiberStack, ConcurrentPushPopConservesItems) {
  constexpr int kThreads = 8, kPer = 5000;
  treiber_stack<int> s(kThreads * kPer);
  std::atomic<long long> popped_sum{0};
  std::atomic<int> popped_count{0};
  run_workers(kThreads, [&](int tid) {
    // Each worker pushes its items and opportunistically pops.
    for (int i = 0; i < kPer; ++i) {
      ASSERT_TRUE(s.push(tid * kPer + i));
      if (i % 3 == 0) {
        if (auto v = s.try_pop()) {
          popped_sum += *v;
          ++popped_count;
        }
      }
    }
  });
  // Drain the rest.
  while (auto v = s.try_pop()) {
    popped_sum += *v;
    ++popped_count;
  }
  const long long n = kThreads * kPer;
  EXPECT_EQ(popped_count.load(), n);
  EXPECT_EQ(popped_sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace anyseq::parallel
