#include "parallel/work_queue.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "parallel/thread_pool.hpp"

namespace anyseq::parallel {
namespace {

TEST(MpmcQueue, FifoOrderSingleThread) {
  mpmc_queue<int> q;
  for (int i = 0; i < 5; ++i) q.push(i);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(MpmcQueue, PopAfterCloseDrainsThenEmpty) {
  mpmc_queue<int> q;
  q.push(1);
  q.close();
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, TryPopNTakesAtMostN) {
  mpmc_queue<int> q;
  for (int i = 0; i < 10; ++i) q.push(i);
  std::vector<int> out;
  EXPECT_EQ(q.try_pop_n(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.size(), 6u);
}

TEST(MpmcQueue, PopNBlocksUntilItemOrClose) {
  mpmc_queue<int> q;
  std::vector<int> out;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.push(7);
  });
  EXPECT_EQ(q.pop_n(out, 3), 1u);
  EXPECT_EQ(out[0], 7);
  producer.join();
}

TEST(MpmcQueue, ManyProducersManyConsumersDeliverEverything) {
  mpmc_queue<int> q;
  constexpr int kProducers = 4, kConsumers = 4, kPer = 2500;
  std::atomic<long long> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p)
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPer; ++i) q.push(p * kPer + i);
    });
  for (int c = 0; c < kConsumers; ++c)
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        if (consumed.fetch_add(1) + 1 == kProducers * kPer) q.close();
      }
    });
  for (auto& t : threads) t.join();
  const long long n = kProducers * kPer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(TreiberStack, LifoOrderSingleThread) {
  treiber_stack<int> s(8);
  EXPECT_TRUE(s.empty());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(s.push(i));
  for (int i = 4; i >= 0; --i) EXPECT_EQ(s.try_pop().value(), i);
  EXPECT_FALSE(s.try_pop().has_value());
}

TEST(TreiberStack, CapacityExhaustionReportsFalse) {
  treiber_stack<int> s(2);
  EXPECT_TRUE(s.push(1));
  EXPECT_TRUE(s.push(2));
  EXPECT_FALSE(s.push(3));
  s.try_pop();
  EXPECT_TRUE(s.push(3));  // capacity recycles
}

TEST(TreiberStack, ZeroCapacity) {
  treiber_stack<int> s(0);
  EXPECT_FALSE(s.push(1));
  EXPECT_FALSE(s.try_pop().has_value());
}

TEST(TreiberStack, ConcurrentPushPopConservesItems) {
  constexpr int kThreads = 8, kPer = 5000;
  treiber_stack<int> s(kThreads * kPer);
  std::atomic<long long> popped_sum{0};
  std::atomic<int> popped_count{0};
  run_workers(kThreads, [&](int tid) {
    // Each worker pushes its items and opportunistically pops.
    for (int i = 0; i < kPer; ++i) {
      ASSERT_TRUE(s.push(tid * kPer + i));
      if (i % 3 == 0) {
        if (auto v = s.try_pop()) {
          popped_sum += *v;
          ++popped_count;
        }
      }
    }
  });
  // Drain the rest.
  while (auto v = s.try_pop()) {
    popped_sum += *v;
    ++popped_count;
  }
  const long long n = kThreads * kPer;
  EXPECT_EQ(popped_count.load(), n);
  EXPECT_EQ(popped_sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace anyseq::parallel
