#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

namespace anyseq::parallel {
namespace {

TEST(RunWorkers, AllWorkerIdsObserved) {
  std::mutex m;
  std::set<int> ids;
  run_workers(4, [&](int tid) {
    std::lock_guard lock(m);
    ids.insert(tid);
  });
  EXPECT_EQ(ids, (std::set<int>{0, 1, 2, 3}));
}

TEST(RunWorkers, SingleWorkerRunsInline) {
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  run_workers(1, [&](int) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, RunsAllJobs) {
  thread_pool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.run([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  thread_pool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  thread_pool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](index_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  thread_pool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(5, 5, [&](index_t) { ++count; });
  pool.parallel_for(9, 3, [&](index_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
}

TEST(ThreadPool, ParallelForSumsCorrectly) {
  thread_pool pool(4);
  std::atomic<long long> sum{0};
  pool.parallel_for(1, 10001, [&](index_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 10000LL * 10001 / 2);
}

TEST(ThreadPool, NestedJobsDoNotDeadlock) {
  thread_pool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i)
    pool.run([&] {
      pool.run([&] { ++count; });
      ++count;
    });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, GlobalPoolExists) {
  EXPECT_GE(thread_pool::global().size(), 1);
}

}  // namespace
}  // namespace anyseq::parallel
