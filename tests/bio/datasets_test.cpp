#include "bio/datasets.hpp"

#include <gtest/gtest.h>

#include "core/errors.hpp"
#include "core/full_engine.hpp"
#include "core/scoring.hpp"

namespace anyseq::bio {
namespace {

TEST(Datasets, Table1HasSixEntriesMatchingPaper) {
  const auto& specs = table1_specs();
  EXPECT_EQ(specs.size(), 6u);
  EXPECT_STREQ(specs[0].accession, "NC_000962.3");
  EXPECT_EQ(specs[0].full_length, 4411532u);
  EXPECT_STREQ(specs[5].accession, "NC_019478.1");
  EXPECT_EQ(specs[5].full_length, 50073674u);
}

TEST(Datasets, PairsCoverSimilarLengthGenomes) {
  for (const auto& pr : table1_pairs()) {
    const auto& a = table1_specs()[static_cast<std::size_t>(pr.first)];
    const auto& b = table1_specs()[static_cast<std::size_t>(pr.second)];
    const double ratio = static_cast<double>(a.full_length) /
                         static_cast<double>(b.full_length);
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
  }
}

TEST(Datasets, SurrogateScalesLength) {
  const auto& spec = table1_specs()[0];
  auto s = make_surrogate(spec, 64);
  EXPECT_EQ(s.size(), static_cast<index_t>(spec.full_length / 64));
}

TEST(Datasets, SurrogateMatchesGc) {
  const auto& spec = table1_specs()[0];  // M. tuberculosis, GC ~0.656
  auto s = make_surrogate(spec, 16);
  EXPECT_NEAR(s.gc_content(), spec.gc, 0.02);
}

TEST(Datasets, SurrogateDeterministic) {
  const auto& spec = table1_specs()[2];
  auto a = make_surrogate(spec, 256, 9);
  auto b = make_surrogate(spec, 256, 9);
  EXPECT_EQ(a.codes(), b.codes());
}

TEST(Datasets, SurrogateRejectsZeroScale) {
  EXPECT_THROW(make_surrogate(table1_specs()[0], 0), invalid_argument_error);
}

TEST(Datasets, MakePairLengthsMatchScaledAccessions) {
  auto pr = make_pair(0, 64);
  const auto& sa = table1_specs()[0];
  const auto& sb = table1_specs()[1];
  EXPECT_EQ(pr.a.size(), static_cast<index_t>(sa.full_length / 64));
  EXPECT_EQ(pr.b.size(), static_cast<index_t>(sb.full_length / 64));
}

TEST(Datasets, MakePairSharesHomologousCore) {
  // The pair must be alignable: a window of `a` semiglobally aligned into
  // the corresponding neighbourhood of `b` should score far above what
  // unrelated random DNA achieves (indels shift coordinates, so positional
  // identity is not a valid measure — alignment is).
  auto pr = make_pair(0, 256);
  const index_t w = 800;
  const index_t pos = pr.a.size() / 3;
  auto qv = pr.a.view().sub(pos, pos + w);
  const index_t lo = std::max<index_t>(0, pos - 2000);
  const index_t hi = std::min(pr.b.size(), pos + w + 2000);
  auto sv = pr.b.view().sub(lo, hi);
  auto hom = full_align<align_kind::semiglobal>(
      qv, sv, linear_gap{-1}, simple_scoring{2, -1}, false);
  // Unrelated locus for comparison (same query, far-away subject window).
  auto far = pr.b.view().sub(0, hi - lo);
  auto rnd = full_align<align_kind::semiglobal>(
      qv, far, linear_gap{-1}, simple_scoring{2, -1}, false);
  EXPECT_GT(hom.score, w);          // > 50% of the all-match maximum (2w)
  EXPECT_GT(hom.score, rnd.score);  // and clearly better than background
}

TEST(Datasets, MakePairRejectsBadIndex) {
  EXPECT_THROW(make_pair(3, 64), invalid_argument_error);
  EXPECT_THROW(make_pair(-1, 64), invalid_argument_error);
}

}  // namespace
}  // namespace anyseq::bio
