#include "bio/fasta.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/errors.hpp"

namespace anyseq::bio {
namespace {

TEST(Fasta, SingleRecord) {
  std::istringstream in(">seq1 description\nACGT\nTTGG\n");
  auto seqs = read_fasta(in);
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].name(), "seq1 description");
  EXPECT_EQ(seqs[0].to_string(), "ACGTTTGG");
}

TEST(Fasta, MultiRecord) {
  std::istringstream in(">a\nAC\n>b\nGT\nGT\n>c\nN\n");
  auto seqs = read_fasta(in);
  ASSERT_EQ(seqs.size(), 3u);
  EXPECT_EQ(seqs[1].to_string(), "GTGT");
  EXPECT_EQ(seqs[2].name(), "c");
}

TEST(Fasta, ToleratesCrlfAndBlankLinesAndComments) {
  std::istringstream in(">a\r\n;comment\r\nACGT\r\n\r\n>b\r\nTT\r\n");
  auto seqs = read_fasta(in);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0].to_string(), "ACGT");
  EXPECT_EQ(seqs[1].to_string(), "TT");
}

TEST(Fasta, RejectsDataBeforeHeader) {
  std::istringstream in("ACGT\n>a\nACGT\n");
  EXPECT_THROW(read_fasta(in), parse_error);
}

TEST(Fasta, RejectsInvalidCharacters) {
  std::istringstream in(">a\nAC1T\n");
  EXPECT_THROW(read_fasta(in), parse_error);
}

TEST(Fasta, EmptyStreamYieldsNothing) {
  std::istringstream in("");
  EXPECT_TRUE(read_fasta(in).empty());
}

TEST(Fasta, WriteReadRoundTrip) {
  std::vector<sequence> seqs;
  seqs.push_back(sequence::from_string("alpha", "ACGTACGTACGT"));
  seqs.push_back(sequence::from_string("beta", "TTTT"));
  std::ostringstream out;
  write_fasta(out, seqs, 5);  // narrow width forces wrapping
  std::istringstream in(out.str());
  auto back = read_fasta(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].to_string(), "ACGTACGTACGT");
  EXPECT_EQ(back[1].name(), "beta");
}

TEST(Fasta, WriteRejectsZeroWidth) {
  std::ostringstream out;
  EXPECT_THROW(write_fasta(out, {}, 0), invalid_argument_error);
}

TEST(Fastq, SingleRecord) {
  std::istringstream in("@r1\nACGT\n+\nIIII\n");
  auto recs = read_fastq(in);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].seq.to_string(), "ACGT");
  EXPECT_EQ(recs[0].quality, "IIII");
}

TEST(Fastq, QualityLengthMismatchRejected) {
  std::istringstream in("@r1\nACGT\n+\nII\n");
  EXPECT_THROW(read_fastq(in), parse_error);
}

TEST(Fastq, MissingSeparatorRejected) {
  std::istringstream in("@r1\nACGT\nIIII\n");
  EXPECT_THROW(read_fastq(in), parse_error);
}

TEST(Fastq, WriteReadRoundTrip) {
  std::vector<fastq_record> recs;
  recs.push_back({sequence::from_string("q", "ACGTN"), "IIII!"});
  std::ostringstream out;
  write_fastq(out, recs);
  std::istringstream in(out.str());
  auto back = read_fastq(in);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].seq.to_string(), "ACGTN");
  EXPECT_EQ(back[0].quality, "IIII!");
}

}  // namespace
}  // namespace anyseq::bio
