#include "bio/protein.hpp"

#include <gtest/gtest.h>

#include "core/full_engine.hpp"
#include "core/gap.hpp"
#include "testutil.hpp"

namespace anyseq::bio {
namespace {

TEST(Protein, EncodeDecodeRoundTrip) {
  for (std::size_t i = 0; i < 21; ++i) {
    const char c = protein_letters[i];
    EXPECT_EQ(protein_encode(c), static_cast<char_t>(i)) << c;
    EXPECT_EQ(protein_decode(static_cast<char_t>(i)), c);
  }
}

TEST(Protein, LowerCaseAndAliases) {
  EXPECT_EQ(protein_encode('a'), protein_encode('A'));
  EXPECT_EQ(protein_encode('B'), protein_encode('N'));  // Asx
  EXPECT_EQ(protein_encode('Z'), protein_encode('Q'));  // Glx
  EXPECT_EQ(protein_encode('U'), protein_encode('C'));  // Sec
  EXPECT_EQ(protein_encode('*'), char_t{20});
}

TEST(Blosum62, KnownEntries) {
  constexpr auto m = blosum62();
  const auto at = [&](char a, char b) {
    return m.at(protein_encode(a), protein_encode(b));
  };
  EXPECT_EQ(at('A', 'A'), 4);
  EXPECT_EQ(at('W', 'W'), 11);
  EXPECT_EQ(at('R', 'K'), 2);
  EXPECT_EQ(at('C', 'C'), 9);
  EXPECT_EQ(at('W', 'C'), -2);
  EXPECT_EQ(at('X', 'A'), -1);
}

TEST(Blosum62, Symmetric) {
  constexpr auto m = blosum62();
  for (int a = 0; a < protein_alphabet_size; ++a)
    for (int b = 0; b < protein_alphabet_size; ++b)
      EXPECT_EQ(m.at(a, b), m.at(b, a)) << a << "," << b;
}

TEST(Blosum62, DiagonalIsMaximalInItsRow) {
  // Standard sanity property: matching a residue with itself scores at
  // least as high as substituting it.
  constexpr auto m = blosum62();
  for (int a = 0; a < 20; ++a)
    for (int b = 0; b < 20; ++b)
      EXPECT_GE(m.at(a, a), m.at(a, b)) << a << "," << b;
}

TEST(Protein, GlobalAlignmentWithBlosum) {
  // Classic example: HEAGAWGHEE vs PAWHEAE with BLOSUM and affine gaps
  // must find the conserved AW..HE core.
  const auto q = protein_encode_all("HEAGAWGHEE");
  const auto s = protein_encode_all("PAWHEAE");
  const auto m = blosum62();
  auto r = full_align<align_kind::global>(
      stage::seq_view(q.data(), static_cast<index_t>(q.size())),
      stage::seq_view(s.data(), static_cast<index_t>(s.size())),
      affine_gap{-10, -1}, m);
  // Independent re-scoring through the matrix itself.
  // (dna_decode-based rescoring does not apply to proteins, so verify
  // via a direct walk.)
  EXPECT_GT(r.score, -30);
  EXPECT_LT(r.score, 60);
  EXPECT_EQ(r.cells, 70u);
}

TEST(Protein, LocalBlosumFindsConservedMotif) {
  const auto q = protein_encode_all("MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ");
  const auto s = protein_encode_all("GGGAKQRQISFVKSHGGG");
  const auto m = blosum62();
  auto r = full_align<align_kind::local>(
      stage::seq_view(q.data(), static_cast<index_t>(q.size())),
      stage::seq_view(s.data(), static_cast<index_t>(s.size())),
      affine_gap{-11, -1}, m);
  // The shared AKQRQISFVKSH block scores strongly.
  EXPECT_GT(r.score, 50);
}

}  // namespace
}  // namespace anyseq::bio
