#include "bio/sequence.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace anyseq::bio {
namespace {

TEST(Sequence, FromStringRoundTrip) {
  auto s = sequence::from_string("s1", "ACGTN");
  EXPECT_EQ(s.name(), "s1");
  EXPECT_EQ(s.size(), 5);
  EXPECT_EQ(s.to_string(), "ACGTN");
  EXPECT_EQ(s[0], dna_a);
  EXPECT_EQ(s[4], dna_n);
}

TEST(Sequence, ViewSharesData) {
  auto s = sequence::from_string("s", "ACGT");
  auto v = s.view();
  EXPECT_EQ(v.size(), 4);
  EXPECT_EQ(v[2], dna_g);
}

TEST(Sequence, GcContent) {
  EXPECT_DOUBLE_EQ(sequence::from_string("x", "GGCC").gc_content(), 1.0);
  EXPECT_DOUBLE_EQ(sequence::from_string("x", "AATT").gc_content(), 0.0);
  EXPECT_DOUBLE_EQ(sequence::from_string("x", "ACGT").gc_content(), 0.5);
  // N excluded from the denominator.
  EXPECT_DOUBLE_EQ(sequence::from_string("x", "GCNN").gc_content(), 1.0);
  EXPECT_DOUBLE_EQ(sequence::from_string("x", "").gc_content(), 0.0);
}

TEST(PackedSequence, RoundTripNoN) {
  auto codes = test::random_codes(1000, 3);
  auto packed = packed_sequence::pack(codes);
  EXPECT_EQ(packed.size(), 1000);
  EXPECT_EQ(packed.packed_bytes(), 250u);
  EXPECT_EQ(packed.n_exceptions(), 0u);
  EXPECT_EQ(packed.unpack(), codes);
}

TEST(PackedSequence, RoundTripWithN) {
  auto codes = test::random_codes(777, 4, /*n_rate=*/0.05);
  auto packed = packed_sequence::pack(codes);
  EXPECT_EQ(packed.unpack(), codes);
  EXPECT_GT(packed.n_exceptions(), 0u);
}

TEST(PackedSequence, RandomAccessAt) {
  auto codes = test::random_codes(129, 5, 0.1);
  auto packed = packed_sequence::pack(codes);
  for (index_t i = 0; i < 129; ++i)
    EXPECT_EQ(packed.at(i), codes[static_cast<std::size_t>(i)]) << i;
}

TEST(PackedSequence, OddLengths) {
  for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u}) {
    auto codes = test::random_codes(n, n + 10);
    auto packed = packed_sequence::pack(codes);
    EXPECT_EQ(packed.unpack(), codes) << n;
  }
}

}  // namespace
}  // namespace anyseq::bio
