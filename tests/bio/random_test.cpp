#include "bio/random.hpp"

#include <gtest/gtest.h>

#include "bio/rng.hpp"
#include "core/errors.hpp"

namespace anyseq::bio {
namespace {

TEST(Rng, SplitmixDeterministic) {
  splitmix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroDeterministicAndSeedSensitive) {
  xoshiro256 a(1), b(1), c(2);
  bool differs = false;
  for (int i = 0; i < 50; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInUnitInterval) {
  xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(RandomGenome, LengthAndDeterminism) {
  genome_params p;
  p.length = 10000;
  p.seed = 5;
  auto a = random_genome("g", p);
  auto b = random_genome("g", p);
  EXPECT_EQ(a.size(), 10000);
  EXPECT_EQ(a.codes(), b.codes());
}

TEST(RandomGenome, GcContentTracksTarget) {
  genome_params p;
  p.length = 200000;
  p.repeat_rate = 0;
  for (double gc : {0.3, 0.5, 0.65}) {
    p.gc = gc;
    p.seed = static_cast<std::uint64_t>(gc * 100);
    auto g = random_genome("g", p);
    EXPECT_NEAR(g.gc_content(), gc, 0.01) << gc;
  }
}

TEST(RandomGenome, NRateProducesNs) {
  genome_params p;
  p.length = 50000;
  p.n_rate = 0.01;
  p.seed = 3;
  auto g = random_genome("g", p);
  std::size_t ns = 0;
  for (char_t c : g.codes())
    if (c == dna_n) ++ns;
  EXPECT_NEAR(static_cast<double>(ns) / 50000.0, 0.01, 0.005);
}

TEST(RandomGenome, RejectsBadParams) {
  genome_params p;
  p.gc = 1.5;
  EXPECT_THROW(random_genome("g", p), invalid_argument_error);
}

TEST(MutateSequence, RatesRoughlyRespected) {
  genome_params gp;
  gp.length = 100000;
  gp.repeat_rate = 0;
  gp.seed = 11;
  auto src = random_genome("src", gp);
  mutation_params mp;
  mp.substitution_rate = 0.05;
  mp.indel_rate = 0.0;  // isolate substitutions
  auto mut = mutate_sequence(src, mp);
  ASSERT_EQ(mut.size(), src.size());
  std::size_t diffs = 0;
  for (index_t i = 0; i < src.size(); ++i)
    if (src[i] != mut[i]) ++diffs;
  EXPECT_NEAR(static_cast<double>(diffs) / 100000.0, 0.05, 0.01);
}

TEST(MutateSequence, IndelsChangeLength) {
  genome_params gp;
  gp.length = 50000;
  gp.repeat_rate = 0;
  gp.seed = 13;
  auto src = random_genome("src", gp);
  mutation_params mp;
  mp.substitution_rate = 0.0;
  mp.indel_rate = 0.02;
  mp.seed = 17;
  auto mut = mutate_sequence(src, mp);
  EXPECT_NE(mut.size(), src.size());
  // Length difference is bounded by a generous factor of the indel mass.
  EXPECT_NEAR(static_cast<double>(mut.size()),
              static_cast<double>(src.size()),
              0.2 * static_cast<double>(src.size()));
}

TEST(MutateSequence, DefaultNameAppendsSuffix) {
  auto src = sequence::from_string("abc", "ACGTACGTACGT");
  auto mut = mutate_sequence(src, {});
  EXPECT_EQ(mut.name(), "abc_mut");
}

}  // namespace
}  // namespace anyseq::bio
