#include "bio/read_sim.hpp"

#include <gtest/gtest.h>

#include "bio/random.hpp"
#include "core/errors.hpp"
#include "core/full_engine.hpp"
#include "core/scoring.hpp"

namespace anyseq::bio {
namespace {

sequence make_ref(index_t len, std::uint64_t seed) {
  genome_params p;
  p.length = len;
  p.repeat_rate = 0;
  p.seed = seed;
  return random_genome("ref", p);
}

TEST(ReadSim, ProducesRequestedCountAndLength) {
  auto ref = make_ref(20000, 1);
  read_sim_params p;
  auto reads = simulate_reads(ref, 50, p);
  ASSERT_EQ(reads.size(), 50u);
  for (const auto& r : reads) {
    EXPECT_EQ(r.read.size(), p.read_length);
    EXPECT_EQ(static_cast<index_t>(r.quality.size()), p.read_length);
  }
}

TEST(ReadSim, Deterministic) {
  auto ref = make_ref(20000, 2);
  read_sim_params p;
  auto a = simulate_reads(ref, 10, p);
  auto b = simulate_reads(ref, 10, p);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(a[i].read.codes(), b[i].read.codes());
}

TEST(ReadSim, ErrorFreeReadsMatchReferenceExactly) {
  auto ref = make_ref(20000, 3);
  read_sim_params p;
  p.sub_rate_begin = p.sub_rate_end = 0.0;
  p.indel_rate = 0.0;
  auto reads = simulate_reads(ref, 20, p);
  for (const auto& r : reads) {
    EXPECT_EQ(r.n_errors, 0);
    for (index_t k = 0; k < p.read_length; ++k)
      ASSERT_EQ(r.read[k], ref[r.origin + k]) << "read " << r.read.name();
  }
}

TEST(ReadSim, ErrorRateScalesWithParams) {
  auto ref = make_ref(50000, 4);
  read_sim_params lo, hi;
  lo.sub_rate_begin = lo.sub_rate_end = 0.001;
  lo.indel_rate = 0;
  hi.sub_rate_begin = hi.sub_rate_end = 0.05;
  hi.indel_rate = 0;
  hi.seed = lo.seed;
  auto rl = simulate_reads(ref, 200, lo);
  auto rh = simulate_reads(ref, 200, hi);
  auto total = [](const std::vector<simulated_read>& v) {
    int t = 0;
    for (const auto& r : v) t += r.n_errors;
    return t;
  };
  EXPECT_LT(total(rl), total(rh));
}

TEST(ReadSim, RejectsTooShortReference) {
  auto ref = make_ref(100, 5);
  read_sim_params p;  // read_length 150 > reference
  EXPECT_THROW(simulate_reads(ref, 1, p), invalid_argument_error);
}

TEST(ReadSim, PairsAlignWellToEachOther) {
  // Both mates come from the same locus with small error rates, so their
  // global alignment score should be close to the all-match maximum.
  auto ref = make_ref(30000, 6);
  read_sim_params p;
  auto pairs = simulate_read_pairs(ref, 10, p);
  ASSERT_EQ(pairs.size(), 10u);
  for (const auto& pr : pairs) {
    auto r = full_align<align_kind::global>(pr.first.view(), pr.second.view(),
                                            linear_gap{-1},
                                            simple_scoring{2, -1}, false);
    EXPECT_GT(r.score, 2 * 150 * 3 / 4) << pr.first.name();
  }
}

TEST(ReadSim, FastqConversionConsistent) {
  auto ref = make_ref(20000, 7);
  auto reads = simulate_reads(ref, 5, {});
  auto fq = to_fastq(reads);
  ASSERT_EQ(fq.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(fq[i].seq.size(), reads[i].read.size());
    EXPECT_EQ(fq[i].quality, reads[i].quality);
  }
}

TEST(ReadSim, QualityReflectsPositionDependentErrors) {
  auto ref = make_ref(20000, 8);
  read_sim_params p;  // default Illumina-shaped ramp
  auto reads = simulate_reads(ref, 50, p);
  // Average quality near the 5' end should exceed the 3' end.
  double q_begin = 0, q_end = 0;
  for (const auto& r : reads) {
    q_begin += r.quality[5];
    q_end += r.quality[static_cast<std::size_t>(p.read_length) - 5];
  }
  EXPECT_GT(q_begin, q_end);
}

}  // namespace
}  // namespace anyseq::bio
