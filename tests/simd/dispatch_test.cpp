/// Tests for the runtime dispatch seam: backend::auto_select must resolve
/// to a variant that detect() reports as safe, and forcing a SIMD backend
/// on hardware that cannot run this binary's kernels must produce a clean
/// unsupported_backend_error — never a crash.

#include "simd/detect.hpp"

#include <gtest/gtest.h>

#include "anyseq/anyseq.hpp"

namespace anyseq {
namespace {

TEST(Dispatch, WidestLanesIsRunnable) {
  const auto f = simd::detect();
  const int lanes = simd::widest_lanes(f);
  EXPECT_TRUE(lanes == 1 || lanes == 16 || lanes == 32);
  EXPECT_TRUE(simd::lanes_runnable(lanes, f));
}

TEST(Dispatch, ScalarAlwaysRunnable) {
  EXPECT_TRUE(simd::lanes_runnable(1, simd::cpu_features{}));
  EXPECT_TRUE(simd::lanes_runnable(1, simd::detect()));
}

TEST(Dispatch, UnknownLaneCountNeverRunnable) {
  const auto f = simd::detect();
  EXPECT_FALSE(simd::lanes_runnable(8, f));
  EXPECT_FALSE(simd::lanes_runnable(64, f));
}

TEST(Dispatch, NativeVariantsRequireCpuSupport) {
  // On a CPU with no SIMD features, a natively compiled variant must be
  // rejected while a generic build of the same width is fine.
  const simd::cpu_features none{};
  EXPECT_EQ(simd::lanes_runnable(16, none), !simd::avx2_native_build());
  EXPECT_EQ(simd::lanes_runnable(32, none), !simd::avx512_native_build());

  const simd::cpu_features all{/*avx2=*/true, /*avx512bw=*/true};
  EXPECT_TRUE(simd::lanes_runnable(16, all));
  EXPECT_TRUE(simd::lanes_runnable(32, all));
}

TEST(Dispatch, WidestLanesPolicy) {
  const simd::cpu_features none{};
  EXPECT_EQ(simd::widest_lanes(none), 1);

  const simd::cpu_features avx2_only{/*avx2=*/true, /*avx512bw=*/false};
  EXPECT_EQ(simd::widest_lanes(avx2_only), 16);

  const simd::cpu_features all{/*avx2=*/true, /*avx512bw=*/true};
  EXPECT_EQ(simd::widest_lanes(all),
            simd::avx512_native_build() ? 32 : 16);
}

TEST(Dispatch, AutoSelectAlignsEverywhere) {
  // auto_select must never throw, whatever the host: it falls back to
  // the widest safe variant, down to scalar.
  align_options opt;
  opt.exec = backend::auto_select;
  const auto r = align_strings("ACGTACGTTGCA", "ACGTCGTTACGCA", opt);
  EXPECT_GT(r.score, 0);
}

TEST(Dispatch, ForcedSimdBackendWorksOrFailsCleanly) {
  // Forcing a SIMD backend either runs (and agrees with scalar) or
  // throws unsupported_backend_error — it must never crash or return
  // garbage.
  const auto f = simd::detect();

  align_options scalar_opt;
  scalar_opt.exec = backend::scalar;
  const auto ref = align_strings("ACGTACGTTGCA", "ACGTCGTTACGCA",
                                 scalar_opt);

  const struct {
    backend b;
    int lanes;
  } forced[] = {{backend::simd_avx2, 16}, {backend::simd_avx512, 32}};

  for (const auto& fc : forced) {
    align_options opt;
    opt.exec = fc.b;
    if (simd::lanes_runnable(fc.lanes, f)) {
      const auto r = align_strings("ACGTACGTTGCA", "ACGTCGTTACGCA", opt);
      EXPECT_EQ(r.score, ref.score) << to_string(fc.b);
    } else {
      EXPECT_THROW(align_strings("ACGTACGTTGCA", "ACGTCGTTACGCA", opt),
                   unsupported_backend_error)
          << to_string(fc.b);
    }
  }
}

TEST(Dispatch, DescribeMentionsVariantProvenance) {
  const auto text = simd::describe(simd::detect());
  EXPECT_NE(text.find("cpu:"), std::string::npos);
  EXPECT_NE(text.find("x16"), std::string::npos);
  EXPECT_NE(text.find("x32"), std::string::npos);
}

}  // namespace
}  // namespace anyseq
