/// Tests for the per-variant engine namespaces (docs/DESIGN.md §5).
///
/// The build compiles the whole lane-dependent engine stack once per
/// variant inside anyseq::v_scalar / v_avx2 / v_avx512 (see
/// simd/foreach_target.hpp); the `engine::ops` tables are the only
/// boundary.  These tests assert the tables report the expected
/// {lanes, native, name} triple, that the three variants are physically
/// distinct code (no shared entry points), and — via the `variant` stamp
/// written *inside* each namespace — that dispatch, including the
/// align_batch traceback path, really executes the selected variant.
/// The archive-level half of the contract (no engine symbol outside its
/// variant namespace) is checked by scripts/check_symbol_isolation.sh,
/// registered as the `symbol_isolation` ctest.

#include "anyseq/engine_table.hpp"

#include <gtest/gtest.h>

#include "anyseq/anyseq.hpp"
#include "simd/detect.hpp"
#include "testutil.hpp"

namespace anyseq {
namespace {

struct variant_case {
  const engine::ops* table;
  int lanes;
  bool native;
  const char* name;
  backend exec;
};

std::vector<variant_case> variants() {
  return {
      {&engine::ops_x1(), 1, true, "scalar", backend::scalar},
      {&engine::ops_x16(), 16, simd::avx2_native_build(), "avx2",
       backend::simd_avx2},
      {&engine::ops_x32(), 32, simd::avx512_native_build(), "avx512",
       backend::simd_avx512},
  };
}

bool runnable(const variant_case& v) {
  return simd::lanes_runnable(v.lanes, simd::detect());
}

TEST(Isolation, OpsTablesReportExpectedTriples) {
  for (const auto& v : variants()) {
    EXPECT_EQ(v.table->lanes, v.lanes) << v.name;
    EXPECT_EQ(v.table->native, v.native) << v.name;
    EXPECT_STREQ(v.table->name, v.name);
  }
}

TEST(Isolation, VariantsAreDistinctCode) {
  // Namespace cloning gives every variant its own copy of every entry
  // point; if two tables shared a function pointer, two variants would be
  // linked to one instantiation — the COMDAT collapse the refactor
  // forbids.
  const auto vs = variants();
  for (std::size_t a = 0; a < vs.size(); ++a) {
    for (std::size_t b = a + 1; b < vs.size(); ++b) {
      EXPECT_NE(vs[a].table->tiled_score, vs[b].table->tiled_score);
      EXPECT_NE(vs[a].table->small_score, vs[b].table->small_score);
      EXPECT_NE(vs[a].table->hirschberg_global,
                vs[b].table->hirschberg_global);
      EXPECT_NE(vs[a].table->full_align, vs[b].table->full_align);
      EXPECT_NE(vs[a].table->locate, vs[b].table->locate);
      EXPECT_NE(vs[a].table->banded_align, vs[b].table->banded_align);
      EXPECT_NE(vs[a].table->batch_scores, vs[b].table->batch_scores);
      EXPECT_NE(vs[a].table->batch_align, vs[b].table->batch_align);
    }
  }
}

TEST(Isolation, AlignStampsTheDispatchedVariant) {
  for (const auto& v : variants()) {
    if (!runnable(v)) continue;
    align_options opt;
    opt.exec = v.exec;

    auto r = align_strings("ACGTACGTTGCA", "ACGTCGTTACGCA", opt);
    EXPECT_STREQ(r.variant, v.name) << "score path";

    opt.want_alignment = true;
    r = align_strings("ACGTACGTTGCA", "ACGTCGTTACGCA", opt);
    EXPECT_STREQ(r.variant, v.name) << "traceback path";
    EXPECT_TRUE(r.has_alignment);
  }
}

TEST(Isolation, BackendNameMatchesDispatch) {
  align_options opt;
  const auto r = align_strings("ACGTACGT", "ACGTCGT", opt);
  EXPECT_STREQ(backend_name(opt), r.variant);
  for (const auto& v : variants()) {
    if (!runnable(v)) continue;
    opt.exec = v.exec;
    EXPECT_STREQ(backend_name(opt), v.name);
  }
}

/// The acceptance-criterion scenario: align_batch with traceback must
/// route through the selected variant (it used to pin a baseline
/// Lanes=1 batch engine), and its results must agree with the scalar
/// variant and carry valid tracebacks.
TEST(Isolation, BatchTracebackExecutesSelectedVariant) {
  std::vector<std::vector<char_t>> qs, ss;
  std::vector<seq_pair> pairs;
  for (std::size_t i = 0; i < 33; ++i) {
    qs.push_back(test::random_codes(60, i + 1));
    ss.push_back(test::random_codes(60, i + 101));
  }
  for (std::size_t i = 0; i < qs.size(); ++i)
    pairs.push_back({test::view(qs[i]), test::view(ss[i])});

  align_options scalar_opt;
  scalar_opt.exec = backend::scalar;
  scalar_opt.want_alignment = true;
  scalar_opt.gap_open = -2;
  const auto ref = align_batch(pairs, scalar_opt);
  ASSERT_EQ(ref.size(), pairs.size());

  for (const auto& v : variants()) {
    if (!runnable(v)) continue;
    align_options opt = scalar_opt;
    opt.exec = v.exec;
    const auto got = align_batch(pairs, opt);
    ASSERT_EQ(got.size(), pairs.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_STREQ(got[i].variant, v.name) << "pair " << i;
      EXPECT_TRUE(got[i].has_alignment) << "pair " << i;
      EXPECT_EQ(got[i].score, ref[i].score) << "pair " << i;
      const score_t re = rescore_alignment(
          got[i].q_aligned, got[i].s_aligned,
          [](char a, char b) { return a == b ? 2 : -1; }, affine_gap{-2, -1});
      EXPECT_EQ(re, got[i].score) << "pair " << i;
    }
  }
}

TEST(Isolation, BatchScoresStampTheVariant) {
  std::vector<std::vector<char_t>> qs;
  std::vector<seq_pair> pairs;
  for (std::size_t i = 0; i < 16; ++i) qs.push_back(test::random_codes(40, i));
  for (auto& q : qs) pairs.push_back({test::view(q), test::view(q)});
  for (const auto& v : variants()) {
    if (!runnable(v)) continue;
    align_options opt;
    opt.exec = v.exec;
    const auto got = align_batch(pairs, opt);
    for (const auto& r : got) {
      EXPECT_STREQ(r.variant, v.name);
      EXPECT_EQ(r.score, 80);  // self-alignment, all matches
    }
  }
}

TEST(Isolation, BandedAlignDispatchesPerVariant) {
  auto q = test::random_codes(300, 7);
  auto s = test::mutate(q, 8);
  align_options ref_opt;
  ref_opt.exec = backend::scalar;
  const auto full = align(test::view(q), test::view(s), ref_opt);

  const band b = band::around_main(
      static_cast<index_t>(q.size()), static_cast<index_t>(s.size()), 48);
  for (const auto& v : variants()) {
    if (!runnable(v)) continue;
    align_options opt;
    opt.exec = v.exec;
    const auto r = align_banded(test::view(q), test::view(s), b, opt);
    EXPECT_STREQ(r.variant, v.name);
    // A generous band contains the unrestricted optimum.
    EXPECT_EQ(r.score, full.score) << v.name;
  }
}

}  // namespace
}  // namespace anyseq
