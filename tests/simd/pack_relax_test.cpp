/// The central staging claim: core::relax instantiated with pack types
/// must compute, lane for lane, exactly what the scalar instantiation
/// computes.  This is what lets one relaxation function serve scalar CPU,
/// AVX2 and AVX-512 backends.

#include <gtest/gtest.h>

#include <random>

#include "core/relax.hpp"
#include "core/scoring.hpp"
#include "simd/pack.hpp"

namespace anyseq {
namespace {

template <int W>
using p16 = simd::pack<score16_t, W>;

template <align_kind K, class Gap, int W>
void compare_lanes(std::uint64_t seed, const Gap& gap) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> val(-200, 200);
  std::uniform_int_distribution<int> chr(0, 3);
  const simple_scoring sc{2, -1};

  prev_cells<p16<W>> pp;
  p16<W> qc, scs;
  prev_cells<score16_t> ps[W];
  score16_t q1[W], s1[W];
  for (int l = 0; l < W; ++l) {
    ps[l] = {static_cast<score16_t>(val(rng)), static_cast<score16_t>(val(rng)),
             static_cast<score16_t>(val(rng)), static_cast<score16_t>(val(rng)),
             static_cast<score16_t>(val(rng))};
    q1[l] = static_cast<score16_t>(chr(rng));
    s1[l] = static_cast<score16_t>(chr(rng));
    pp.diag.v[l] = ps[l].diag;
    pp.up.v[l] = ps[l].up;
    pp.left.v[l] = ps[l].left;
    pp.e_up.v[l] = ps[l].e_up;
    pp.f_left.v[l] = ps[l].f_left;
    qc.v[l] = q1[l];
    scs.v[l] = s1[l];
  }

  auto rv = relax<K, true, p16<W>, p16<W>, p16<W>>(pp, qc, scs, gap, sc);
  for (int l = 0; l < W; ++l) {
    auto rs = relax<K, true, score16_t, score16_t, score16_t>(
        ps[l], q1[l], s1[l], gap, sc);
    ASSERT_EQ(rv.h[l], rs.h) << "lane " << l;
    ASSERT_EQ(rv.e[l], rs.e) << "lane " << l;
    ASSERT_EQ(rv.f[l], rs.f) << "lane " << l;
    ASSERT_EQ(rv.pred[l], rs.pred) << "lane " << l;
  }
}

TEST(PackRelax, GlobalLinear16Lanes) {
  for (std::uint64_t s = 0; s < 20; ++s)
    compare_lanes<align_kind::global, linear_gap, 16>(s, linear_gap{-1});
}

TEST(PackRelax, GlobalAffine16Lanes) {
  for (std::uint64_t s = 0; s < 20; ++s)
    compare_lanes<align_kind::global, affine_gap, 16>(s, affine_gap{-2, -1});
}

TEST(PackRelax, LocalAffine16Lanes) {
  for (std::uint64_t s = 0; s < 20; ++s)
    compare_lanes<align_kind::local, affine_gap, 16>(s, affine_gap{-3, -1});
}

TEST(PackRelax, SemiglobalLinear16Lanes) {
  for (std::uint64_t s = 0; s < 20; ++s)
    compare_lanes<align_kind::semiglobal, linear_gap, 16>(s, linear_gap{-2});
}

TEST(PackRelax, GlobalAffine32Lanes) {
  // The AVX-512-shaped 32-lane type must agree too.
  for (std::uint64_t s = 0; s < 20; ++s)
    compare_lanes<align_kind::global, affine_gap, 32>(s, affine_gap{-2, -1});
}

TEST(PackRelax, LocalLinear32Lanes) {
  for (std::uint64_t s = 0; s < 20; ++s)
    compare_lanes<align_kind::local, linear_gap, 32>(s, linear_gap{-1});
}

TEST(PackRelax, MatrixScoringLanes) {
  // Matrix scoring goes through the per-lane gather path.
  const auto table = dna_matrix_scoring::uniform(3, -2);
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<int> val(-100, 100);
  std::uniform_int_distribution<int> chr(0, 4);
  prev_cells<p16<16>> pp;
  p16<16> qc, scs;
  prev_cells<score16_t> ps[16];
  for (int l = 0; l < 16; ++l) {
    ps[l] = {static_cast<score16_t>(val(rng)), static_cast<score16_t>(val(rng)),
             static_cast<score16_t>(val(rng)), static_cast<score16_t>(val(rng)),
             static_cast<score16_t>(val(rng))};
    pp.diag.v[l] = ps[l].diag;
    pp.up.v[l] = ps[l].up;
    pp.left.v[l] = ps[l].left;
    pp.e_up.v[l] = ps[l].e_up;
    pp.f_left.v[l] = ps[l].f_left;
    qc.v[l] = static_cast<score16_t>(chr(rng));
    scs.v[l] = static_cast<score16_t>(chr(rng));
  }
  auto rv = relax<align_kind::global, false, p16<16>, p16<16>, p16<16>>(
      pp, qc, scs, affine_gap{-2, -1}, table);
  for (int l = 0; l < 16; ++l) {
    auto rs = relax<align_kind::global, false, score16_t, score16_t,
                    score16_t>(ps[l], qc.v[l], scs.v[l], affine_gap{-2, -1},
                               table);
    ASSERT_EQ(rv.h[l], rs.h) << "lane " << l;
  }
}

}  // namespace
}  // namespace anyseq
