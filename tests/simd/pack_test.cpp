#include "simd/pack.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace anyseq::simd {
namespace {

using s16 = pack<score16_t, 16>;
using s16w = pack<score16_t, 32>;
using s32 = pack<score_t, 8>;

template <class P>
P iota(typename P::value_type start) {
  P p;
  for (int i = 0; i < P::lanes; ++i)
    p.v[i] = static_cast<typename P::value_type>(start + i);
  return p;
}

template <class P>
class PackOps : public ::testing::Test {};
using PackTypes = ::testing::Types<s16, s16w, s32>;
TYPED_TEST_SUITE(PackOps, PackTypes);

TYPED_TEST(PackOps, BroadcastFillsAllLanes) {
  auto p = TypeParam::broadcast(7);
  for (int i = 0; i < TypeParam::lanes; ++i) EXPECT_EQ(p[i], 7);
}

TYPED_TEST(PackOps, LoadStoreRoundTrip) {
  auto p = iota<TypeParam>(3);
  typename TypeParam::value_type buf[TypeParam::lanes];
  p.store(buf);
  auto q = TypeParam::load(buf);
  EXPECT_EQ(p, q);
}

TYPED_TEST(PackOps, MaxIsLaneWise) {
  auto a = iota<TypeParam>(0);
  auto b = TypeParam::broadcast(5);
  auto m = vmax(a, b);
  for (int i = 0; i < TypeParam::lanes; ++i)
    EXPECT_EQ(m[i], std::max<int>(i, 5));
}

TYPED_TEST(PackOps, MinIsLaneWise) {
  auto a = iota<TypeParam>(0);
  auto b = TypeParam::broadcast(5);
  auto m = vmin(a, b);
  for (int i = 0; i < TypeParam::lanes; ++i)
    EXPECT_EQ(m[i], std::min<int>(i, 5));
}

TYPED_TEST(PackOps, AddIsLaneWise) {
  auto a = iota<TypeParam>(1);
  auto b = iota<TypeParam>(10);
  auto r = vadd(a, b);
  for (int i = 0; i < TypeParam::lanes; ++i) EXPECT_EQ(r[i], 11 + 2 * i);
}

TYPED_TEST(PackOps, CompareAndSelect) {
  auto a = iota<TypeParam>(0);
  auto b = TypeParam::broadcast(4);
  auto m = vgt(a, b);  // lanes 5.. true
  auto sel = vselect(m, TypeParam::broadcast(1), TypeParam::broadcast(0));
  for (int i = 0; i < TypeParam::lanes; ++i)
    EXPECT_EQ(sel[i], i > 4 ? 1 : 0) << i;
}

TYPED_TEST(PackOps, EqMask) {
  auto a = iota<TypeParam>(0);
  auto b = TypeParam::broadcast(3);
  auto m = veq(a, b);
  for (int i = 0; i < TypeParam::lanes; ++i)
    EXPECT_EQ(m[i] != 0, i == 3) << i;
}

TYPED_TEST(PackOps, OrAndOnMasks) {
  auto a = iota<TypeParam>(0);
  auto lo = vgt(TypeParam::broadcast(2), a);   // i < 2... lanes 0,1
  auto hi = vgt(a, TypeParam::broadcast(4));   // i > 4
  auto both = vor(lo, hi);
  auto neither = vand(lo, hi);
  for (int i = 0; i < TypeParam::lanes; ++i) {
    EXPECT_EQ(both[i] != 0, i < 2 || i > 4) << i;
    EXPECT_EQ(neither[i] != 0, false) << i;
  }
}

TYPED_TEST(PackOps, HorizontalMax) {
  auto p = iota<TypeParam>(-3);
  EXPECT_EQ(p.hmax(), TypeParam::lanes - 4);
}

TYPED_TEST(PackOps, BroadcastViaCoreHook) {
  auto p = vbroadcast<TypeParam>(9);
  for (int i = 0; i < TypeParam::lanes; ++i) EXPECT_EQ(p[i], 9);
}

TEST(Pack16, SaturatingAddClampsAtBounds) {
  auto big = s16::broadcast(32000);
  auto r = vadd(big, s16::broadcast(1000));
  for (int i = 0; i < 16; ++i) EXPECT_EQ(r[i], 32767);
  auto small = s16::broadcast(-32000);
  auto r2 = vadd(small, s16::broadcast(-1000));
  for (int i = 0; i < 16; ++i) EXPECT_EQ(r2[i], -32768);
}

TEST(Pack16, NegInfSentinelStaysNegative) {
  auto ninf = s16::broadcast(neg_inf16());
  auto r = vadd(ninf, s16::broadcast(-10000));
  for (int i = 0; i < 16; ++i) EXPECT_LT(r[i], neg_inf16() / 2);
}

TEST(Pack32, PlainAddDoesNotSaturate) {
  auto a = s32::broadcast(1 << 30);
  auto r = vadd(a, s32::broadcast(5));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(r[i], (1 << 30) + 5);
}

TEST(PackLookup, GathersPerLane) {
  // 2x2 table: t[a][b].
  const score_t table[4] = {10, 20, 30, 40};
  pack<score16_t, 16> q, s;
  for (int i = 0; i < 16; ++i) {
    q.v[i] = static_cast<score16_t>(i % 2);
    s.v[i] = static_cast<score16_t>((i / 2) % 2);
  }
  auto r = vlookup<pack<score16_t, 16>>(table, 2, q, s);
  for (int i = 0; i < 16; ++i) {
    const int want = table[(i % 2) * 2 + (i / 2) % 2];
    EXPECT_EQ(r[i], want) << i;
  }
}

#if defined(__AVX2__)
TEST(PackAvx2, IntrinsicAndGenericAgree) {
  // The AVX2 overloads must agree with the generic loops on random data;
  // compare against the 32-lane generic type on the shared low lanes.
  pack<score16_t, 16> a, b;
  for (int i = 0; i < 16; ++i) {
    a.v[i] = static_cast<score16_t>(i * 1000 - 7000);
    b.v[i] = static_cast<score16_t>(5000 - i * 900);
  }
  auto m = vmax(a, b);
  auto s = vadd(a, b);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(m[i], std::max(a[i], b[i]));
    const int wide = a[i] + b[i];
    EXPECT_EQ(s[i], std::clamp(wide, -32768, 32767));
  }
}
#endif

}  // namespace
}  // namespace anyseq::simd
