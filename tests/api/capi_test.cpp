#include "capi/anyseq_c.h"

#include <gtest/gtest.h>

#include <cstring>

#include "anyseq/anyseq.hpp"

namespace {

TEST(CApi, GlobalScore) {
  EXPECT_EQ(anyseq_global_score("ACGT", "ACGT", 2, -1, -1), 8);
  EXPECT_EQ(anyseq_global_score("ACGT", "AGGT", 2, -1, -1), 5);
}

TEST(CApi, LocalScore) {
  EXPECT_EQ(anyseq_local_score("TTACGTTT", "GGACGGG", 2, -2, -3, -1), 6);
}

TEST(CApi, SemiglobalScore) {
  EXPECT_EQ(anyseq_semiglobal_score("ACGT", "TTTTACGTTTTT", 2, -1, -1), 8);
}

TEST(CApi, ConstructGlobalAlignment) {
  char qa[32], sa[32];
  const auto score =
      anyseq_construct_global_alignment("ACGTACGT", "ACGTCGT", qa, sa);
  EXPECT_EQ(score, 13);
  EXPECT_EQ(std::strlen(qa), std::strlen(sa));
  EXPECT_EQ(std::strlen(qa), 8u);
  // Stripping gaps reproduces the inputs.
  std::string qp, sp;
  for (const char* p = qa; *p; ++p)
    if (*p != '-') qp.push_back(*p);
  for (const char* p = sa; *p; ++p)
    if (*p != '-') sp.push_back(*p);
  EXPECT_EQ(qp, "ACGTACGT");
  EXPECT_EQ(sp, "ACGTCGT");
}

TEST(CApi, ConstructGlobalAffine) {
  char qa[32], sa[32];
  const auto score = anyseq_construct_global_alignment_affine(
      "ACGT", "ACGGT", 2, -1, -2, -1, qa, sa);
  EXPECT_EQ(score, 5);  // 4 matches - (2+1)
}

TEST(CApi, ConstructLocalAlignment) {
  char qa[64], sa[64];
  int64_t qb = -1, sb = -1;
  const auto score = anyseq_construct_local_alignment(
      "TTTTACGTACGTTTTT", "GGGGACGTACGGGGGG", 2, -2, 0, -2, qa, sa, &qb,
      &sb);
  EXPECT_EQ(score, 14);
  EXPECT_STREQ(qa, "ACGTACG");
  EXPECT_EQ(qb, 4);
  EXPECT_EQ(sb, 4);
}

TEST(CApi, NullInputsReturnError) {
  EXPECT_EQ(anyseq_global_score(nullptr, "ACGT", 2, -1, -1), ANYSEQ_C_ERROR);
  EXPECT_EQ(anyseq_global_score("ACGT", nullptr, 2, -1, -1), ANYSEQ_C_ERROR);
}

TEST(CApi, InvalidParamsReturnError) {
  // Positive gap penalty is invalid.
  EXPECT_EQ(anyseq_global_score("ACGT", "ACGT", 2, -1, +1), ANYSEQ_C_ERROR);
}

TEST(CApi, Version) {
  EXPECT_STREQ(anyseq_version(), "1.0.0");
}

TEST(CApi, BackendNameRoundTripsToCppDispatch) {
  const char* name = anyseq_backend_name();
  ASSERT_NE(name, nullptr);
  // Must be one of the shipped CPU engine variants...
  const bool known = std::strcmp(name, "scalar") == 0 ||
                     std::strcmp(name, "avx2") == 0 ||
                     std::strcmp(name, "avx512") == 0;
  EXPECT_TRUE(known) << name;
  // ...and exactly the variant the C++ dispatcher resolves and stamps.
  EXPECT_STREQ(name, anyseq::backend_name());
  const auto r = anyseq::align_strings("ACGTACGTTGCA", "ACGTCGTTACGCA", {});
  EXPECT_STREQ(name, r.variant);
  // Stable across calls (static storage contract).
  EXPECT_EQ(name, anyseq_backend_name());
}

}  // namespace
