#include "capi/anyseq_c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "anyseq/anyseq.hpp"

namespace {

TEST(CApi, GlobalScore) {
  EXPECT_EQ(anyseq_global_score("ACGT", "ACGT", 2, -1, -1), 8);
  EXPECT_EQ(anyseq_global_score("ACGT", "AGGT", 2, -1, -1), 5);
}

TEST(CApi, LocalScore) {
  EXPECT_EQ(anyseq_local_score("TTACGTTT", "GGACGGG", 2, -2, -3, -1), 6);
}

TEST(CApi, SemiglobalScore) {
  EXPECT_EQ(anyseq_semiglobal_score("ACGT", "TTTTACGTTTTT", 2, -1, -1), 8);
}

TEST(CApi, ConstructGlobalAlignment) {
  char qa[32], sa[32];
  const auto score =
      anyseq_construct_global_alignment("ACGTACGT", "ACGTCGT", qa, sa);
  EXPECT_EQ(score, 13);
  EXPECT_EQ(std::strlen(qa), std::strlen(sa));
  EXPECT_EQ(std::strlen(qa), 8u);
  // Stripping gaps reproduces the inputs.
  std::string qp, sp;
  for (const char* p = qa; *p; ++p)
    if (*p != '-') qp.push_back(*p);
  for (const char* p = sa; *p; ++p)
    if (*p != '-') sp.push_back(*p);
  EXPECT_EQ(qp, "ACGTACGT");
  EXPECT_EQ(sp, "ACGTCGT");
}

TEST(CApi, ConstructGlobalAffine) {
  char qa[32], sa[32];
  const auto score = anyseq_construct_global_alignment_affine(
      "ACGT", "ACGGT", 2, -1, -2, -1, qa, sa);
  EXPECT_EQ(score, 5);  // 4 matches - (2+1)
}

TEST(CApi, ConstructLocalAlignment) {
  char qa[64], sa[64];
  int64_t qb = -1, sb = -1;
  const auto score = anyseq_construct_local_alignment(
      "TTTTACGTACGTTTTT", "GGGGACGTACGGGGGG", 2, -2, 0, -2, qa, sa, &qb,
      &sb);
  EXPECT_EQ(score, 14);
  EXPECT_STREQ(qa, "ACGTACG");
  EXPECT_EQ(qb, 4);
  EXPECT_EQ(sb, 4);
}

TEST(CApi, NullInputsReturnError) {
  EXPECT_EQ(anyseq_global_score(nullptr, "ACGT", 2, -1, -1), ANYSEQ_C_ERROR);
  EXPECT_EQ(anyseq_global_score("ACGT", nullptr, 2, -1, -1), ANYSEQ_C_ERROR);
}

TEST(CApi, InvalidParamsReturnError) {
  // Positive gap penalty is invalid.
  EXPECT_EQ(anyseq_global_score("ACGT", "ACGT", 2, -1, +1), ANYSEQ_C_ERROR);
}

TEST(CApi, Version) {
  EXPECT_STREQ(anyseq_version(), "1.0.0");
}

TEST(CApiService, CreateSubmitWaitDestroy) {
  anyseq_service* svc = anyseq_service_create(0, 0, 0, 0);
  ASSERT_NE(svc, nullptr);
  anyseq_ticket* t = anyseq_service_submit(
      svc, "ACGT", "ACGT", ANYSEQ_ALIGN_GLOBAL, 2, -1, 0, -1, 0);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(anyseq_service_wait(t, nullptr, nullptr), 8);
  anyseq_service_destroy(svc);
}

TEST(CApiService, WantAlignmentFillsBuffers) {
  anyseq_service* svc = anyseq_service_create(16, 100, 64,
                                              ANYSEQ_BACKPRESSURE_BLOCK);
  ASSERT_NE(svc, nullptr);
  char qa[32], sa[32];
  anyseq_ticket* t = anyseq_service_submit(
      svc, "ACGTACGT", "ACGTCGT", ANYSEQ_ALIGN_GLOBAL, 2, -1, 0, -1, 1);
  ASSERT_NE(t, nullptr);
  // Identical to the synchronous C entry point.
  char qa_sync[32], sa_sync[32];
  const auto want = anyseq_construct_global_alignment("ACGTACGT", "ACGTCGT",
                                                      qa_sync, sa_sync);
  EXPECT_EQ(anyseq_service_wait(t, qa, sa), want);
  EXPECT_STREQ(qa, qa_sync);
  EXPECT_STREQ(sa, sa_sync);
  anyseq_service_destroy(svc);
}

TEST(CApiService, ManyRequestsMatchSynchronousScores) {
  anyseq_service* svc = anyseq_service_create(32, 500, 256,
                                              ANYSEQ_BACKPRESSURE_BLOCK);
  ASSERT_NE(svc, nullptr);
  const char* seqs[] = {"ACGTACGTAC", "ACGTTCGTAC", "TTTTACGTTT",
                        "GGACGGGTTA", "ACGT", "A"};
  std::vector<anyseq_ticket*> tickets;
  for (int i = 0; i < 48; ++i)
    tickets.push_back(anyseq_service_submit(
        svc, seqs[i % 6], seqs[(i + 1) % 6], ANYSEQ_ALIGN_GLOBAL, 2, -1, -2,
        -1, 0));
  for (int i = 0; i < 48; ++i) {
    ASSERT_NE(tickets[i], nullptr) << i;
    const auto want = anyseq::align_strings(
        seqs[i % 6], seqs[(i + 1) % 6], [] {
          anyseq::align_options o;
          o.gap_open = -2;
          return o;
        }());
    EXPECT_EQ(anyseq_service_wait(tickets[i], nullptr, nullptr), want.score)
        << i;
  }
  anyseq_service_stats stats;
  ASSERT_EQ(anyseq_service_get_stats(svc, &stats), 0);
  EXPECT_EQ(stats.accepted, 48u);
  EXPECT_EQ(stats.completed, 48u);
  EXPECT_GE(stats.mean_batch_occupancy, 1.0);
  // Robustness counters: a healthy service reports all-clear.
  EXPECT_EQ(stats.deadline_expired, 0u);
  EXPECT_EQ(stats.quarantined, 0u);
  EXPECT_EQ(stats.watchdog_restarts, 0u);
  EXPECT_EQ(stats.brownout, 0u);
  anyseq_service_destroy(svc);
}

TEST(CApiService, TicketWaitForProbesWithoutConsuming) {
  anyseq_service* svc =
      anyseq_service_create(1, 0, 8, ANYSEQ_BACKPRESSURE_BLOCK);
  ASSERT_NE(svc, nullptr);
  // A large pair keeps the ticket pending long enough that the instant
  // and 1ms probes below reliably observe TIMEOUT.
  const std::string big_q(8000, 'A');
  std::string big_s;
  for (int i = 0; i < 8000; ++i) big_s.push_back("ACGT"[i % 4]);
  anyseq_ticket* slow =
      anyseq_service_submit(svc, big_q.c_str(), big_s.c_str(),
                            ANYSEQ_ALIGN_GLOBAL, 2, -1, 0, -1, 0);
  ASSERT_NE(slow, nullptr);
  EXPECT_EQ(anyseq_ticket_wait_for(slow, 0), ANYSEQ_WAIT_TIMEOUT);
  EXPECT_EQ(anyseq_ticket_wait_for(slow, 1000), ANYSEQ_WAIT_TIMEOUT);
  EXPECT_EQ(anyseq_ticket_wait_for(slow, -1), -1);  // negative timeout
  EXPECT_EQ(anyseq_ticket_wait_for(nullptr, 0), -1);
  // Bounded wait to completion; none of the probes consumed the ticket,
  // so redeeming it still returns the score.
  EXPECT_EQ(anyseq_ticket_wait_for(slow, 60000000), ANYSEQ_WAIT_READY);
  EXPECT_EQ(anyseq_ticket_wait_for(slow, 0), ANYSEQ_WAIT_READY);
  const auto want = anyseq::align_strings(big_q, big_s).score;
  EXPECT_EQ(anyseq_service_wait(slow, nullptr, nullptr), want);
  anyseq_service_destroy(svc);
}

TEST(CApiService, InvalidArgumentsReturnNullOrError) {
  EXPECT_EQ(anyseq_service_create(-1, 0, 0, 0), nullptr);
  EXPECT_EQ(anyseq_service_create(0, 0, 0, 99), nullptr);

  anyseq_service* svc = anyseq_service_create(0, 0, 0, 0);
  ASSERT_NE(svc, nullptr);
  EXPECT_EQ(anyseq_service_submit(nullptr, "A", "A", ANYSEQ_ALIGN_GLOBAL, 2,
                                  -1, 0, -1, 0),
            nullptr);
  EXPECT_EQ(anyseq_service_submit(svc, nullptr, "A", ANYSEQ_ALIGN_GLOBAL, 2,
                                  -1, 0, -1, 0),
            nullptr);
  EXPECT_EQ(anyseq_service_submit(svc, "A", nullptr, ANYSEQ_ALIGN_GLOBAL, 2,
                                  -1, 0, -1, 0),
            nullptr);
  // Positive gap penalty: rejected synchronously, no ticket.
  EXPECT_EQ(anyseq_service_submit(svc, "A", "A", ANYSEQ_ALIGN_GLOBAL, 2, -1,
                                  0, +1, 0),
            nullptr);
  EXPECT_EQ(anyseq_service_wait(nullptr, nullptr, nullptr), ANYSEQ_C_ERROR);
  anyseq_ticket_discard(nullptr);  // must be a safe no-op
  anyseq_service_destroy(nullptr); // must be a safe no-op
  anyseq_service_destroy(svc);
}

TEST(CApiService, DiscardedTicketStillExecutesAndDrains) {
  anyseq_service* svc = anyseq_service_create(0, 0, 0, 0);
  ASSERT_NE(svc, nullptr);
  anyseq_ticket* t = anyseq_service_submit(
      svc, "ACGTACGT", "ACGTACGT", ANYSEQ_ALIGN_GLOBAL, 2, -1, 0, -1, 0);
  ASSERT_NE(t, nullptr);
  anyseq_ticket_discard(t);
  anyseq_service_destroy(svc);  // drains without leaking the slot
}

TEST(CApiAligner, HandleMatchesStatelessResults) {
  anyseq_aligner* a = anyseq_aligner_create();
  ASSERT_NE(a, nullptr);
  const char* q = "ACGTACGTTGCA";
  const char* s = "ACGTCGTTACGCA";

  EXPECT_EQ(anyseq_aligner_global_score(a, q, s, 2, -1, -1),
            anyseq_global_score(q, s, 2, -1, -1));
  EXPECT_EQ(anyseq_aligner_local_score(a, q, s, 2, -1, -2, -1),
            anyseq_local_score(q, s, 2, -1, -2, -1));
  EXPECT_EQ(anyseq_aligner_semiglobal_score(a, q, s, 2, -1, -1),
            anyseq_semiglobal_score(q, s, 2, -1, -1));

  // Traceback through the handle equals the stateless construction.
  char qa1[64], sa1[64], qa2[64], sa2[64];
  const auto sc1 = anyseq_aligner_construct_global_alignment_affine(
      a, q, s, 2, -1, -2, -1, qa1, sa1);
  const auto sc2 = anyseq_construct_global_alignment_affine(
      q, s, 2, -1, -2, -1, qa2, sa2);
  EXPECT_EQ(sc1, sc2);
  EXPECT_STREQ(qa1, qa2);
  EXPECT_STREQ(sa1, sa2);

  // The handle keeps (and reports) its warm workspace.
  EXPECT_GT(anyseq_aligner_workspace_bytes(a), 0u);
  anyseq_aligner_shrink(a);
  // Usable after shrink (re-warms transparently).
  EXPECT_EQ(anyseq_aligner_global_score(a, q, s, 2, -1, -1),
            anyseq_global_score(q, s, 2, -1, -1));
  anyseq_aligner_destroy(a);
}

TEST(CApiAligner, PlanReportsRouteAndPrecision) {
  anyseq_aligner* a = anyseq_aligner_create();
  ASSERT_NE(a, nullptr);

  anyseq_plan p{};
  // Default scoring on a mid-size problem: the 32-bit engines.
  ASSERT_EQ(anyseq_aligner_plan(a, 500, 500, 2, -1, -1, &p), 0);
  EXPECT_STREQ(p.precision, "int32");
  EXPECT_STREQ(p.variant, anyseq_backend_name());
  EXPECT_GT(p.workspace_bytes, 0u);

  // Unit-cost scoring admits the Myers bit-parallel route.
  ASSERT_EQ(anyseq_aligner_plan(a, 150, 150, 0, -1, -1, &p), 0);
  EXPECT_STREQ(p.route, "bitpar_score");
  EXPECT_STREQ(p.precision, "bitpar");
  EXPECT_GT(p.workspace_bytes, 0u);

  // Invalid shape / scoring / pointers report failure, touch nothing.
  EXPECT_EQ(anyseq_aligner_plan(a, 0, 10, 2, -1, -1, &p), -1);
  EXPECT_EQ(anyseq_aligner_plan(a, 10, 10, 2, -1, +1, &p), -1);
  EXPECT_EQ(anyseq_aligner_plan(a, 10, 10, 2, -1, -1, nullptr), -1);
  EXPECT_EQ(anyseq_aligner_plan(nullptr, 10, 10, 2, -1, -1, &p), -1);
  anyseq_aligner_destroy(a);
}

TEST(CApiAligner, RejectsInvalidInput) {
  anyseq_aligner* a = anyseq_aligner_create();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(anyseq_aligner_global_score(nullptr, "A", "A", 2, -1, -1),
            ANYSEQ_C_ERROR);
  EXPECT_EQ(anyseq_aligner_global_score(a, nullptr, "A", 2, -1, -1),
            ANYSEQ_C_ERROR);
  EXPECT_EQ(anyseq_aligner_global_score(a, "A", "A", 2, -1, +1),
            ANYSEQ_C_ERROR);  // positive gap penalty
  EXPECT_EQ(anyseq_aligner_local_score(a, "A", "A", 0, -1, 0, -1),
            ANYSEQ_C_ERROR);  // non-positive local match
  // Lifecycle no-ops on NULL.
  anyseq_aligner_reserve(nullptr, 10, 10);
  anyseq_aligner_shrink(nullptr);
  anyseq_aligner_destroy(nullptr);
  EXPECT_EQ(anyseq_aligner_workspace_bytes(nullptr), 0u);
  anyseq_aligner_destroy(a);
}

TEST(CApi, BackendNameRoundTripsToCppDispatch) {
  const char* name = anyseq_backend_name();
  ASSERT_NE(name, nullptr);
  // Must be one of the shipped CPU engine variants...
  const bool known = std::strcmp(name, "scalar") == 0 ||
                     std::strcmp(name, "avx2") == 0 ||
                     std::strcmp(name, "avx512") == 0;
  EXPECT_TRUE(known) << name;
  // ...and exactly the variant the C++ dispatcher resolves and stamps.
  EXPECT_STREQ(name, anyseq::backend_name());
  const auto r = anyseq::align_strings("ACGTACGTTGCA", "ACGTCGTTACGCA", {});
  EXPECT_STREQ(name, r.variant);
  // Stable across calls (static storage contract).
  EXPECT_EQ(name, anyseq_backend_name());
}

}  // namespace
