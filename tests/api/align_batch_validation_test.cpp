/// Input-validation and degenerate-input contract of align_batch
/// (documented in anyseq.hpp): empty batches, zero-length sequence
/// entries, and the per-pair identity of batch results with align() —
/// the invariants the asynchronous service layer builds on.

#include <gtest/gtest.h>

#include "anyseq/anyseq.hpp"
#include "testutil.hpp"

namespace anyseq {
namespace {

using test::backend_runnable;
using test::random_codes;
using test::view;

TEST(AlignBatchValidation, EmptyBatchReturnsEmptyVector) {
  EXPECT_TRUE(align_batch({}, {}).empty());
  align_options opt;
  opt.want_alignment = true;
  EXPECT_TRUE(align_batch({}, opt).empty());
}

TEST(AlignBatchValidation, EmptyBatchStillValidatesOptions) {
  align_options opt;
  opt.gap_extend = 1;  // invalid: must be <= 0
  EXPECT_THROW((void)align_batch({}, opt), invalid_argument_error);
}

TEST(AlignBatchValidation, ZeroLengthEntriesAreDefined) {
  const auto a = random_codes(24, 1);
  const std::vector<char_t> empty;
  const std::vector<seq_pair> pairs{
      {view(a), view(a)}, {view(empty), view(a)},
      {view(a), view(empty)}, {view(empty), view(empty)}};

  for (const bool traceback : {false, true}) {
    align_options opt;
    opt.want_alignment = traceback;
    const auto rs = align_batch(pairs, opt);
    ASSERT_EQ(rs.size(), pairs.size());
    // An empty side aligns against all-gaps: score is the full gap run.
    EXPECT_EQ(rs[1].score, -static_cast<score_t>(a.size()));
    EXPECT_EQ(rs[2].score, -static_cast<score_t>(a.size()));
    EXPECT_EQ(rs[3].score, 0);
    if (traceback) {
      EXPECT_EQ(rs[1].q_aligned, std::string(a.size(), '-'));
      EXPECT_EQ(rs[2].s_aligned, std::string(a.size(), '-'));
      EXPECT_TRUE(rs[3].q_aligned.empty());
    }
    // Entry-by-entry identical to a single align() call.
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const auto want = align(pairs[i].q, pairs[i].s, opt);
      EXPECT_EQ(rs[i].score, want.score) << i;
      EXPECT_EQ(rs[i].cells, want.cells) << i;
      if (traceback) {
        EXPECT_EQ(rs[i].q_aligned, want.q_aligned) << i;
        EXPECT_EQ(rs[i].s_aligned, want.s_aligned) << i;
        EXPECT_EQ(rs[i].cigar, want.cigar) << i;
      }
    }
  }
}

TEST(AlignBatchValidation, ZeroLengthLocalScoresZero) {
  const auto a = random_codes(16, 2);
  const std::vector<char_t> empty;
  align_options opt;
  opt.kind = align_kind::local;
  const auto rs = align_batch(
      std::vector<seq_pair>{{view(empty), view(a)}}, opt);
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].score, 0);
}

TEST(AlignBatchValidation, ScoreOnlyResultsCarryEndCoordinates) {
  // The score path used to drop the optimum's end cell; the service
  // layer needs it to match per-pair align() byte for byte.
  const auto q = random_codes(48, 3);
  const auto s = random_codes(52, 4);
  for (const backend exec :
       {backend::scalar, backend::simd_avx2, backend::simd_avx512}) {
    if (!backend_runnable(exec)) continue;
    align_options opt;
    opt.exec = exec;
    const auto rs =
        align_batch(std::vector<seq_pair>{{view(q), view(s)}}, opt);
    const auto want = align(view(q), view(s), opt);
    ASSERT_EQ(rs.size(), 1u);
    EXPECT_EQ(rs[0].score, want.score);
    EXPECT_EQ(rs[0].q_end, want.q_end);
    EXPECT_EQ(rs[0].s_end, want.s_end);
    EXPECT_EQ(rs[0].q_end, static_cast<index_t>(q.size()));
    EXPECT_EQ(rs[0].s_end, static_cast<index_t>(s.size()));
    EXPECT_EQ(rs[0].cells, want.cells);
    EXPECT_STREQ(rs[0].variant, want.variant);
  }
}

TEST(AlignBatchValidation, MixedLengthBatchMatchesPerPairAlign) {
  // Mixed lengths force both the SIMD chunks and the scalar fallback;
  // global score-only results must equal align() entry by entry.
  std::vector<std::vector<char_t>> store;
  std::vector<seq_pair> pairs;
  for (int i = 0; i < 40; ++i) {
    store.push_back(random_codes(8 + (i * 13) % 80, 100 + i));
    store.push_back(random_codes(8 + (i * 19) % 80, 200 + i));
  }
  for (int i = 0; i < 40; ++i)
    pairs.push_back({view(store[2 * i]), view(store[2 * i + 1])});
  const auto rs = align_batch(pairs, {});
  ASSERT_EQ(rs.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto want = align(pairs[i].q, pairs[i].s, {});
    EXPECT_EQ(rs[i].score, want.score) << i;
    EXPECT_EQ(rs[i].q_end, want.q_end) << i;
    EXPECT_EQ(rs[i].s_end, want.s_end) << i;
    EXPECT_EQ(rs[i].cells, want.cells) << i;
  }
}

}  // namespace
}  // namespace anyseq
