/// Substitution-matrix scoring through every engine: the SIMD engines use
/// a per-lane gather (vlookup) instead of the compare/blend fast path, so
/// the matrix code path needs its own cross-backend equality sweep.

#include <gtest/gtest.h>

#include "anyseq/anyseq.hpp"
#include "baselines/naive.hpp"
#include "fpgasim/systolic.hpp"
#include "gpusim/gpu_engine.hpp"
#include "testutil.hpp"
#include "tiled/batch_engine.hpp"
#include "tiled/tiled_engine.hpp"

namespace anyseq {
namespace {

using test::view;

constexpr auto kMatrix = dna_default_matrix();
constexpr affine_gap kGap{-4, -1};

score_t oracle(const std::vector<char_t>& q, const std::vector<char_t>& s,
               align_kind k) {
  baselines::naive_params p;
  p.kind = k;
  p.gap_open = kGap.open();
  p.gap_extend = kGap.extend();
  p.subst_table = kMatrix.table.data();
  p.alphabet = dna_alphabet_size;
  return baselines::naive_score(q, s, p);
}

class MatrixKinds : public ::testing::TestWithParam<align_kind> {};

TEST_P(MatrixKinds, TiledSimdMatchesOracle) {
  const align_kind k = GetParam();
  auto q = test::random_codes(200, 1, /*n_rate=*/0.03);
  auto s = test::mutate(q, 2);
  const score_t want = oracle(q, s, k);
  auto run = [&](auto kc) {
    constexpr align_kind K = decltype(kc)::value;
    tiled::tiled_engine<K, affine_gap, dna_matrix_scoring, 16> eng(
        kGap, kMatrix, {48, 48, 2, true});
    return eng.score(view(q), view(s)).score;
  };
  score_t got = 0;
  switch (k) {
    case align_kind::global:
      got = run(std::integral_constant<align_kind, align_kind::global>{});
      break;
    case align_kind::local:
      got = run(std::integral_constant<align_kind, align_kind::local>{});
      break;
    case align_kind::semiglobal:
      got = run(std::integral_constant<align_kind, align_kind::semiglobal>{});
      break;
    default:
      GTEST_SKIP();
  }
  EXPECT_EQ(got, want) << to_string(k);
}

INSTANTIATE_TEST_SUITE_P(Kinds, MatrixKinds,
                         ::testing::Values(align_kind::global,
                                           align_kind::local,
                                           align_kind::semiglobal),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(MatrixScoringBackends, BatchSimdGatherMatchesOracle) {
  std::vector<std::vector<char_t>> qs, ss;
  std::vector<tiled::pair_view> pairs;
  for (int i = 0; i < 40; ++i) {
    qs.push_back(test::random_codes(70, 100 + i, 0.02));
    ss.push_back(test::random_codes(70, 200 + i, 0.02));
  }
  for (int i = 0; i < 40; ++i) pairs.push_back({view(qs[i]), view(ss[i])});
  tiled::batch_engine<align_kind::global, affine_gap, dna_matrix_scoring, 16>
      eng(kGap, kMatrix, {2});
  const auto got = eng.scores(pairs);
  for (int i = 0; i < 40; ++i)
    ASSERT_EQ(got[i], oracle(qs[i], ss[i], align_kind::global)) << i;
  EXPECT_GT(eng.last_stats().simd_pairs, 0u);  // the gather path ran
}

TEST(MatrixScoringBackends, GpuSimMatchesOracle) {
  auto q = test::random_codes(150, 7, 0.02);
  auto s = test::mutate(q, 8);
  gpusim::device dev;
  gpusim::gpu_engine<align_kind::global, affine_gap, dna_matrix_scoring>
      eng(dev, kGap, kMatrix, {40, 40, 8});
  EXPECT_EQ(eng.score(view(q), view(s)).score,
            oracle(q, s, align_kind::global));
}

TEST(MatrixScoringBackends, FpgaSimMatchesOracle) {
  auto q = test::random_codes(90, 9, 0.02);
  auto s = test::random_codes(120, 10, 0.02);
  const auto r = fpgasim::systolic_score<align_kind::global>(
      view(q), view(s), kGap, kMatrix);
  EXPECT_EQ(r.score, oracle(q, s, align_kind::global));
}

TEST(MatrixScoringBackends, FacadeMatrixAcrossBackends) {
  auto q = test::random_codes(180, 11);
  auto s = test::mutate(q, 12);
  align_options opt;
  opt.matrix = kMatrix;
  opt.gap_open = kGap.open();
  opt.gap_extend = kGap.extend();
  opt.threads = 2;
  opt.tile = 64;
  const score_t want = oracle(q, s, align_kind::global);
  for (backend b : {backend::scalar, backend::simd_avx2,
                    backend::simd_avx512, backend::gpu_sim,
                    backend::fpga_sim}) {
    if (!test::backend_runnable(b)) continue;
    opt.exec = b;
    EXPECT_EQ(align(view(q), view(s), opt).score, want) << to_string(b);
  }
}

TEST(MatrixScoringBackends, NMatchesNeutrallyWithDefaultMatrix) {
  // dna_default_matrix scores N as 0 against everything: alignments over
  // N-rich regions should sit between all-match and all-mismatch.
  auto q = test::random_codes(50, 13, /*n_rate=*/1.0);  // all N
  align_options opt;
  opt.matrix = kMatrix;
  opt.gap_open = -4;
  const auto r = align(view(q), view(q), opt);
  EXPECT_EQ(r.score, 0);  // N vs N scores 0 per column
}

}  // namespace
}  // namespace anyseq
