/// Randomized end-to-end fuzz of the public API: random sequences,
/// random (valid) option combinations, random backends — every result is
/// checked against the independent naive oracle, and every produced
/// traceback is re-scored.  This is the last line of defense against
/// dispatch-table mistakes (a wrong template instantiation for some
/// option combination would pass unit tests of the engines themselves).

#include <gtest/gtest.h>

#include <random>

#include "anyseq/anyseq.hpp"
#include "baselines/naive.hpp"
#include "testutil.hpp"

namespace anyseq {
namespace {

using test::view;

struct fuzz_case {
  align_options opt;
  std::vector<char_t> q, s;
};

fuzz_case make_case(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pick = [&](auto... vals) {
    const std::common_type_t<decltype(vals)...> arr[] = {vals...};
    return arr[rng() % sizeof...(vals)];
  };
  fuzz_case c;
  c.opt.kind = pick(align_kind::global, align_kind::local,
                    align_kind::semiglobal);
  c.opt.match = pick(1, 2, 5);
  c.opt.mismatch = pick(-1, -3);
  c.opt.gap_open = pick(0, 0, -2, -5);  // 0 twice: linear is common
  c.opt.gap_extend = pick(-1, -2);
  c.opt.exec = pick(backend::scalar, backend::simd_avx2,
                    backend::simd_avx512, backend::gpu_sim,
                    backend::fpga_sim);
  if (!test::backend_runnable(c.opt.exec)) c.opt.exec = backend::scalar;
  c.opt.threads = static_cast<int>(1 + rng() % 3);
  c.opt.tile = pick(index_t{16}, index_t{64}, index_t{200});
  c.opt.want_alignment =
      c.opt.exec != backend::fpga_sim && (rng() % 2 == 0);
  // Sometimes force the linear-space D&C path for tracebacks.
  if (c.opt.want_alignment && rng() % 3 == 0) c.opt.full_matrix_cells = 64;
  // Exercise the precision lattice: forced narrow types run the checked
  // kernels with escalation; traceback routes ignore the hint.
  c.opt.precision =
      pick(score_precision::auto_select, score_precision::auto_select,
           score_precision::int8, score_precision::int16,
           score_precision::int32);
  // Fold unit-cost option sets into the mix — they admit the Myers
  // bit-parallel route (score-only, global), forced or auto-selected.
  if (rng() % 4 == 0) {
    c.opt.kind = align_kind::global;
    c.opt.want_alignment = false;
    c.opt.match = 0;
    c.opt.gap_open = 0;
    c.opt.mismatch = c.opt.gap_extend = pick(-1, -2);
    c.opt.precision = rng() % 2 == 0 ? score_precision::bitpar
                                     : score_precision::auto_select;
  }

  const auto nq = 1 + rng() % 120, ns = 1 + rng() % 120;
  c.q = test::random_codes(nq, seed * 3 + 1);
  c.s = rng() % 2 == 0 ? test::random_codes(ns, seed * 3 + 2)
                       : test::mutate(c.q, seed * 3 + 2);
  return c;
}

score_t oracle_score(const fuzz_case& c) {
  baselines::naive_params p;
  p.kind = c.opt.kind;
  p.match = c.opt.match;
  p.mismatch = c.opt.mismatch;
  p.gap_open = c.opt.gap_open;
  p.gap_extend = c.opt.gap_extend;
  return baselines::naive_score(c.q, c.s, p);
}

class OptionsFuzz : public ::testing::TestWithParam<int> {};

TEST_P(OptionsFuzz, MatchesOracleAndRescores) {
  for (int rep = 0; rep < 25; ++rep) {
    const auto seed =
        static_cast<std::uint64_t>(GetParam()) * 1000 + rep;
    const auto c = make_case(seed);
    SCOPED_TRACE(::testing::Message()
                 << "seed " << seed << " kind " << to_string(c.opt.kind)
                 << " backend " << to_string(c.opt.exec) << " open "
                 << c.opt.gap_open << " tb " << c.opt.want_alignment
                 << " nq " << c.q.size() << " ns " << c.s.size());

    const auto r = align(view(c.q), view(c.s), c.opt);
    ASSERT_EQ(r.score, oracle_score(c));

    if (c.opt.want_alignment &&
        !(c.opt.kind == align_kind::local && r.score == 0)) {
      const score_t match = c.opt.match, mismatch = c.opt.mismatch;
      auto subst = [match, mismatch](char a, char b) {
        return a == b ? match : mismatch;
      };
      score_t re;
      if (c.opt.gap_open == 0)
        re = rescore_alignment(r.q_aligned, r.s_aligned, subst,
                               linear_gap{c.opt.gap_extend});
      else
        re = rescore_alignment(r.q_aligned, r.s_aligned, subst,
                               affine_gap{c.opt.gap_open, c.opt.gap_extend});
      ASSERT_EQ(re, r.score);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptionsFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace anyseq
