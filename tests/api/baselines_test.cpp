#include "baselines/libraries.hpp"

#include <gtest/gtest.h>

#include "core/rolling.hpp"
#include "testutil.hpp"

namespace anyseq::baselines {
namespace {

using test::view;

TEST(SeqanLike, ScoresMatchReferenceLinearAndAffine) {
  auto q = test::random_codes(300, 1);
  auto s = test::mutate(q, 2);
  // Linear request -> affine(0, g) machinery, same scores.
  seqan_like<align_kind::global, 16> lin(2, -1, linear_gap{-1}, {2, 64});
  const auto want_lin = rolling_score<align_kind::global>(
      view(q), view(s), linear_gap{-1}, simple_scoring{2, -1});
  EXPECT_EQ(lin.score(view(q), view(s)).score, want_lin.score);

  seqan_like<align_kind::global, 16> aff(2, -1, affine_gap{-2, -1}, {2, 64});
  const auto want_aff = rolling_score<align_kind::global>(
      view(q), view(s), affine_gap{-2, -1}, simple_scoring{2, -1});
  EXPECT_EQ(aff.score(view(q), view(s)).score, want_aff.score);
}

TEST(SeqanLike, TracebackRescores) {
  auto q = test::random_codes(400, 3);
  auto s = test::mutate(q, 4);
  seqan_like<align_kind::global, 16> eng(2, -1, affine_gap{-2, -1}, {2, 64});
  const auto r = eng.align(view(q), view(s));
  const score_t re = rescore_alignment(
      r.q_aligned, r.s_aligned,
      [](char a, char b) { return a == b ? 2 : -1; }, affine_gap{-2, -1});
  EXPECT_EQ(re, r.score);
}

TEST(SeqanLike, BatchScoresMatch) {
  std::vector<std::vector<char_t>> qs;
  std::vector<tiled::pair_view> pairs;
  for (int i = 0; i < 32; ++i) qs.push_back(test::random_codes(60, 10 + i));
  for (int i = 0; i < 32; ++i) pairs.push_back({view(qs[i]), view(qs[i])});
  seqan_like<align_kind::global, 16> eng(2, -1, linear_gap{-1}, {2, 64});
  for (score_t v : eng.batch_scores(pairs)) EXPECT_EQ(v, 120);
}

TEST(ParasailLike, ScoresMatchReference) {
  auto q = test::random_codes(250, 5);
  auto s = test::mutate(q, 6);
  parasail_like<align_kind::global, 16> eng(2, -1, linear_gap{-1}, {2, 64});
  const auto want = rolling_score<align_kind::global>(
      view(q), view(s), linear_gap{-1}, simple_scoring{2, -1});
  EXPECT_EQ(eng.score(view(q), view(s)).score, want.score);
}

TEST(ParasailLike, LocalScores) {
  auto q = test::random_codes(200, 7);
  auto s = test::random_codes(180, 8);
  parasail_like<align_kind::local, 16> eng(2, -1, affine_gap{-4, -1},
                                           {2, 64});
  const auto want = rolling_score<align_kind::local>(
      view(q), view(s), affine_gap{-4, -1}, simple_scoring{2, -1});
  EXPECT_EQ(eng.score(view(q), view(s)).score, want.score);
}

TEST(ParasailLike, TracebackRescores) {
  auto q = test::random_codes(300, 9);
  auto s = test::mutate(q, 10);
  parasail_like<align_kind::global, 16> eng(2, -1, affine_gap{-2, -1},
                                            {2, 64});
  const auto r = eng.align(view(q), view(s));
  const score_t re = rescore_alignment(
      r.q_aligned, r.s_aligned,
      [](char a, char b) { return a == b ? 2 : -1; }, affine_gap{-2, -1});
  EXPECT_EQ(re, r.score);
}

TEST(NvbioLike, ScoresMatchReference) {
  auto q = test::random_codes(220, 11);
  auto s = test::mutate(q, 12);
  gpusim::device dev;
  nvbio_like<align_kind::global, linear_gap> eng(dev, 2, -1, linear_gap{-1});
  const auto want = rolling_score<align_kind::global>(
      view(q), view(s), linear_gap{-1}, simple_scoring{2, -1});
  EXPECT_EQ(eng.score(view(q), view(s)).score, want.score);
}

TEST(NvbioLike, ModelsSlowerThanAnyseqGpu) {
  // Same work, degraded kernel model + row spills: simulated GCUPS of the
  // nvbio-like baseline must come out below the AnySeq GPU estimate —
  // the paper's "factor of up to 1.1".
  auto q = test::random_codes(2048, 13);
  auto s = test::random_codes(2048, 14);
  const simple_scoring sc{2, -1};

  gpusim::device d_any;
  gpusim::gpu_engine<align_kind::global, linear_gap, simple_scoring> any(
      d_any, linear_gap{-1}, sc);
  (void)any.score(view(q), view(s));
  const auto g_any = gpusim::estimate(d_any.counters(), gpusim::gpu_model{});

  gpusim::device d_nv;
  nvbio_like<align_kind::global, linear_gap> nv(d_nv, 2, -1, linear_gap{-1});
  (void)nv.score(view(q), view(s));
  const auto g_nv = nv.estimate();

  EXPECT_GT(g_any.gcups, g_nv.gcups);
  EXPECT_LT(g_any.gcups, g_nv.gcups * 1.6);  // close race, not a blowout
}

TEST(AsAffine, MapsLinearOntoOpenZero) {
  constexpr auto a = as_affine(linear_gap{-3});
  EXPECT_EQ(a.open(), 0);
  EXPECT_EQ(a.extend(), -3);
  constexpr auto b = as_affine(affine_gap{-5, -2});
  EXPECT_EQ(b.open(), -5);
  EXPECT_EQ(b.extend(), -2);
}

}  // namespace
}  // namespace anyseq::baselines
