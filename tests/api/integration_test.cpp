/// End-to-end integration: bio data generation -> public API -> results,
/// across backends, mirroring how the examples and benchmarks compose the
/// library.

#include <gtest/gtest.h>

#include <sstream>

#include "anyseq/anyseq.hpp"
#include "bio/datasets.hpp"
#include "bio/fasta.hpp"
#include "bio/read_sim.hpp"
#include "testutil.hpp"

namespace anyseq {
namespace {

TEST(Integration, Table1PairThroughAllCpuBackends) {
  auto pr = bio::make_pair(0, 2048);  // ~2 kbp surrogates
  align_options opt;
  opt.threads = 2;
  opt.tile = 128;
  score_t reference = 0;
  bool first = true;
  for (backend b : {backend::scalar, backend::simd_avx2,
                    backend::simd_avx512, backend::gpu_sim,
                    backend::fpga_sim}) {
    if (!test::backend_runnable(b)) continue;
    opt.exec = b;
    const auto r = align(pr.a.view(), pr.b.view(), opt);
    if (first) {
      reference = r.score;
      first = false;
    } else {
      EXPECT_EQ(r.score, reference) << to_string(b);
    }
  }
  // Homologous pair: strongly positive global score.
  EXPECT_GT(reference, 0);
}

TEST(Integration, SimulatedReadsRoundTripThroughFastqAndBatch) {
  bio::genome_params gp;
  gp.length = 30000;
  gp.seed = 77;
  const auto ref = bio::random_genome("chr10_surrogate", gp);
  const auto reads = bio::simulate_reads(ref, 64, {});

  // FASTQ round trip.
  std::ostringstream out;
  bio::write_fastq(out, bio::to_fastq(reads));
  std::istringstream in(out.str());
  const auto back = bio::read_fastq(in);
  ASSERT_EQ(back.size(), 64u);

  // Align each read back to its origin window semiglobally.
  align_options opt;
  opt.kind = align_kind::semiglobal;
  opt.want_alignment = true;
  int well_aligned = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const auto& rd = reads[i];
    const index_t lo = std::max<index_t>(0, rd.origin - 20);
    const index_t hi =
        std::min<index_t>(ref.size(), rd.origin + rd.read.size() + 20);
    const auto r = align(rd.read.view(), ref.view().sub(lo, hi), opt);
    if (r.score > rd.read.size()) ++well_aligned;  // > 50% of max
  }
  EXPECT_GE(well_aligned, 14);
}

TEST(Integration, BatchPipelineAcrossBackends) {
  bio::genome_params gp;
  gp.length = 20000;
  gp.seed = 88;
  const auto ref = bio::random_genome("ref", gp);
  const auto pairs_data = bio::simulate_read_pairs(ref, 48, {});
  std::vector<seq_pair> pairs;
  for (const auto& p : pairs_data)
    pairs.push_back({p.first.view(), p.second.view()});

  align_options opt;
  opt.gap_open = -2;
  opt.threads = 2;
  std::vector<score_t> reference;
  for (backend b :
       {backend::scalar, backend::simd_avx2, backend::gpu_sim}) {
    if (!test::backend_runnable(b)) continue;
    opt.exec = b;
    const auto rs = align_batch(pairs, opt);
    ASSERT_EQ(rs.size(), pairs.size());
    if (reference.empty()) {
      for (const auto& r : rs) reference.push_back(r.score);
    } else {
      for (std::size_t i = 0; i < rs.size(); ++i)
        EXPECT_EQ(rs[i].score, reference[i]) << to_string(b) << " " << i;
    }
  }
}

TEST(Integration, FastaToAlignmentPipeline) {
  std::istringstream in(">a\nACGTACGTACGT\n>b\nACGTCCGTACGT\n");
  const auto seqs = bio::read_fasta(in);
  ASSERT_EQ(seqs.size(), 2u);
  align_options opt;
  opt.want_alignment = true;
  const auto r = align(seqs[0].view(), seqs[1].view(), opt);
  EXPECT_EQ(r.score, 11 * 2 - 1);  // 11 matches, 1 mismatch
  EXPECT_EQ(r.cigar, "4=1X7=");
}

TEST(Integration, DeterministicAcrossRuns) {
  auto pr = bio::make_pair(1, 8192);
  align_options opt;
  opt.exec = test::backend_runnable(backend::simd_avx2)
                 ? backend::simd_avx2
                 : backend::scalar;
  opt.threads = 3;
  opt.tile = 96;
  const auto a = align(pr.a.view(), pr.b.view(), opt);
  const auto b = align(pr.a.view(), pr.b.view(), opt);
  EXPECT_EQ(a.score, b.score);
  EXPECT_EQ(a.cells, b.cells);
}

}  // namespace
}  // namespace anyseq
