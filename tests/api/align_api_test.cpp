#include "anyseq/anyseq.hpp"

#include <gtest/gtest.h>

#include "core/rolling.hpp"
#include "testutil.hpp"

namespace anyseq {
namespace {

using test::view;

const backend kAllBackends[] = {backend::scalar, backend::simd_avx2,
                                backend::simd_avx512, backend::gpu_sim,
                                backend::fpga_sim};

class BackendSweep : public ::testing::TestWithParam<backend> {};

TEST_P(BackendSweep, ScoreOnlyMatchesReferenceAllKinds) {
  if (!test::backend_runnable(GetParam()))
    GTEST_SKIP() << "host cannot run " << to_string(GetParam());
  auto q = test::random_codes(260, 1);
  auto s = test::mutate(q, 2);
  for (align_kind k : {align_kind::global, align_kind::local,
                       align_kind::semiglobal}) {
    for (score_t open : {score_t{0}, score_t{-2}}) {
      align_options opt;
      opt.kind = k;
      opt.exec = GetParam();
      opt.gap_open = open;
      opt.threads = 2;
      opt.tile = 64;
      const auto got = align(view(q), view(s), opt);
      score_t want;
      if (open == 0) {
        auto w = [&] {
          switch (k) {
            case align_kind::local:
              return rolling_score<align_kind::local>(view(q), view(s),
                                                      linear_gap{-1},
                                                      simple_scoring{2, -1});
            case align_kind::semiglobal:
              return rolling_score<align_kind::semiglobal>(
                  view(q), view(s), linear_gap{-1}, simple_scoring{2, -1});
            default:
              return rolling_score<align_kind::global>(view(q), view(s),
                                                       linear_gap{-1},
                                                       simple_scoring{2, -1});
          }
        }();
        want = w.score;
      } else {
        auto w = [&] {
          switch (k) {
            case align_kind::local:
              return rolling_score<align_kind::local>(
                  view(q), view(s), affine_gap{-2, -1},
                  simple_scoring{2, -1});
            case align_kind::semiglobal:
              return rolling_score<align_kind::semiglobal>(
                  view(q), view(s), affine_gap{-2, -1},
                  simple_scoring{2, -1});
            default:
              return rolling_score<align_kind::global>(
                  view(q), view(s), affine_gap{-2, -1},
                  simple_scoring{2, -1});
          }
        }();
        want = w.score;
      }
      EXPECT_EQ(got.score, want)
          << to_string(k) << " open " << open << " on "
          << to_string(GetParam());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendSweep,
                         ::testing::ValuesIn(kAllBackends),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(AlignApi, QuickstartStringsGlobal) {
  align_options opt;
  opt.want_alignment = true;
  auto r = align_strings("ACGTACGT", "ACGTCGT", opt);
  EXPECT_EQ(r.score, 14 - 1);  // 7 matches, one gap
  EXPECT_TRUE(r.has_alignment);
  EXPECT_EQ(r.q_aligned.size(), 8u);
}

TEST(AlignApi, AutoBackendResolves) {
  align_options opt;  // auto
  auto r = align_strings("ACGT", "ACGT", opt);
  EXPECT_EQ(r.score, 8);
}

TEST(AlignApi, TracebackLongSequenceUsesLinearSpacePath) {
  if (!test::backend_runnable(backend::simd_avx2))
    GTEST_SKIP() << "host cannot run simd_avx2";
  auto q = test::random_codes(900, 3);
  auto s = test::mutate(q, 4);
  align_options opt;
  opt.want_alignment = true;
  opt.full_matrix_cells = 1 << 10;  // force the divide & conquer path
  opt.exec = backend::simd_avx2;
  opt.tile = 64;
  opt.threads = 2;
  const auto r = align(view(q), view(s), opt);
  const auto want = rolling_score<align_kind::global>(
      view(q), view(s), linear_gap{-1}, simple_scoring{2, -1});
  EXPECT_EQ(r.score, want.score);
  const score_t re = rescore_alignment(
      r.q_aligned, r.s_aligned,
      [](char a, char b) { return a == b ? 2 : -1; }, linear_gap{-1});
  EXPECT_EQ(re, r.score);
}

TEST(AlignApi, LocalTracebackViaLocate) {
  auto q = test::random_codes(700, 5);
  auto s = test::random_codes(650, 6);
  align_options opt;
  opt.kind = align_kind::local;
  opt.want_alignment = true;
  opt.gap_open = -3;
  opt.full_matrix_cells = 1 << 10;
  opt.tile = 64;
  const auto r = align(view(q), view(s), opt);
  const auto want = rolling_score<align_kind::local>(
      view(q), view(s), affine_gap{-3, -1}, simple_scoring{2, -1});
  EXPECT_EQ(r.score, want.score);
  if (r.score > 0) {
    const score_t re = rescore_alignment(
        r.q_aligned, r.s_aligned,
        [](char a, char b) { return a == b ? 2 : -1; }, affine_gap{-3, -1});
    EXPECT_EQ(re, r.score);
  }
}

TEST(AlignApi, SemiglobalTracebackViaLocate) {
  auto ref = test::random_codes(2000, 7);
  std::vector<char_t> read(ref.begin() + 500, ref.begin() + 800);
  align_options opt;
  opt.kind = align_kind::semiglobal;
  opt.want_alignment = true;
  opt.full_matrix_cells = 1 << 10;
  opt.tile = 64;
  const auto r = align(view(read), view(ref), opt);
  EXPECT_EQ(r.score, 600);  // perfect embedded match
  EXPECT_EQ(r.s_begin, 500);
  EXPECT_EQ(r.s_end, 800);
}

TEST(AlignApi, MatrixScoringSupported) {
  align_options opt;
  opt.matrix = dna_default_matrix();
  auto r = align_strings("ACGT", "ACGT", opt);
  EXPECT_EQ(r.score, 20);  // 4 x match(+5)
}

TEST(AlignApi, ExtensionKindScoreOnly) {
  align_options opt;
  opt.kind = align_kind::extension;
  opt.match = 2;
  auto r = align_strings("ACGTTTT", "ACGAAAA", opt);
  EXPECT_EQ(r.score, 6);  // the "ACG" prefix (3 matches), then stop
}

TEST(AlignApi, FpgaBackendRejectsTraceback) {
  align_options opt;
  opt.exec = backend::fpga_sim;
  opt.want_alignment = true;
  EXPECT_THROW((void)align_strings("ACGT", "ACGT", opt),
               invalid_argument_error);
}

TEST(AlignApi, ValidatesOptions) {
  align_options opt;
  opt.gap_extend = 1;
  EXPECT_THROW(validate(opt), invalid_argument_error);
  opt = {};
  opt.gap_open = 3;
  EXPECT_THROW(validate(opt), invalid_argument_error);
  opt = {};
  opt.threads = -1;
  EXPECT_THROW(validate(opt), invalid_argument_error);
  opt = {};
  opt.tile = 0;
  EXPECT_THROW(validate(opt), invalid_argument_error);
  opt = {};
  opt.kind = align_kind::local;
  opt.match = 0;
  EXPECT_THROW(validate(opt), invalid_argument_error);
}

TEST(AlignApi, BatchMatchesSingleAlignments) {
  std::vector<std::vector<char_t>> qs, ss;
  std::vector<seq_pair> pairs;
  for (int i = 0; i < 40; ++i) {
    qs.push_back(test::random_codes(90, 500 + i));
    ss.push_back(test::random_codes(90, 600 + i));
  }
  for (int i = 0; i < 40; ++i) pairs.push_back({view(qs[i]), view(ss[i])});
  align_options opt;
  opt.exec = test::backend_runnable(backend::simd_avx2)
                 ? backend::simd_avx2
                 : backend::scalar;
  opt.threads = 2;
  auto batch = align_batch(pairs, opt);
  ASSERT_EQ(batch.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    const auto single = align(pairs[i].q, pairs[i].s, opt);
    EXPECT_EQ(batch[i].score, single.score) << i;
  }
}

TEST(AlignApi, BatchWithTracebackRescores) {
  std::vector<std::vector<char_t>> qs;
  std::vector<seq_pair> pairs;
  for (int i = 0; i < 8; ++i) qs.push_back(test::random_codes(60, 700 + i));
  for (int i = 0; i < 8; ++i) pairs.push_back({view(qs[i]), view(qs[i])});
  align_options opt;
  opt.want_alignment = true;
  opt.gap_open = -2;
  auto rs = align_batch(pairs, opt);
  for (const auto& r : rs) {
    EXPECT_EQ(r.score, 120);  // self alignment, 60 matches
    EXPECT_EQ(r.cigar, "60=");
  }
}

TEST(AlignApi, EmptyInputsHandled) {
  align_options opt;
  EXPECT_EQ(align_strings("", "ACG", opt).score, -3);
  EXPECT_EQ(align_strings("", "", opt).score, 0);
  opt.kind = align_kind::local;
  EXPECT_EQ(align_strings("", "ACG", opt).score, 0);
}

TEST(AlignApi, VersionIsSet) {
  EXPECT_STREQ(version(), "1.0.0");
}

}  // namespace
}  // namespace anyseq
