/// Acceptance stress test for the alignment service (and the headline
/// TSan workload): >= 10k mixed-size requests from >= 4 concurrent
/// producer threads, every result byte-identical to a synchronous
/// align() call, and a clean drain with zero leaked tickets.
///
/// Producers run a sliding window of outstanding tickets so the test
/// also exercises steady-state slot recycling rather than a one-shot
/// fill/drain.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "service/service.hpp"
#include "testutil.hpp"

namespace anyseq::service {
namespace {

using test::random_codes;
using test::view;

constexpr int kProducers = 4;
constexpr int kPerProducer = 2500;  // 10k requests total
constexpr int kWindow = 64;        // outstanding tickets per producer

/// The rotating option mix: exercises both batch routes, solo routes,
/// and option-compatibility flush boundaries under concurrency.
std::vector<align_options> option_mix() {
  std::vector<align_options> mix(7);
  mix[0].kind = align_kind::global;  // batch_score
  mix[1].kind = align_kind::global;  // batch_traceback
  mix[1].want_alignment = true;
  mix[2].kind = align_kind::global;  // batch_score, distinct gap model
  mix[2].gap_open = -2;
  mix[3].kind = align_kind::local;   // solo
  mix[3].want_alignment = true;
  mix[4].kind = align_kind::semiglobal;  // solo, score-only
  mix[5].kind = align_kind::global;  // batch_score via the Myers
  mix[5].match = 0;                  // bit-parallel engine (unit cost)
  mix[5].mismatch = -1;
  mix[5].gap_extend = -1;
  mix[6].kind = align_kind::global;  // batch_score, forced checked int16
  mix[6].precision = score_precision::int16;
  return mix;
}

void expect_identical(const alignment_result& got,
                      const alignment_result& want, std::size_t tag) {
  ASSERT_EQ(got.score, want.score) << "request " << tag;
  ASSERT_EQ(got.q_begin, want.q_begin) << "request " << tag;
  ASSERT_EQ(got.q_end, want.q_end) << "request " << tag;
  ASSERT_EQ(got.s_begin, want.s_begin) << "request " << tag;
  ASSERT_EQ(got.s_end, want.s_end) << "request " << tag;
  ASSERT_EQ(got.q_aligned, want.q_aligned) << "request " << tag;
  ASSERT_EQ(got.s_aligned, want.s_aligned) << "request " << tag;
  ASSERT_EQ(got.cigar, want.cigar) << "request " << tag;
  ASSERT_EQ(got.has_alignment, want.has_alignment) << "request " << tag;
  ASSERT_EQ(got.cells, want.cells) << "request " << tag;
  ASSERT_NE(got.variant, nullptr) << "request " << tag;
  ASSERT_STREQ(got.variant, want.variant) << "request " << tag;
}

TEST(ServiceStress, TenThousandMixedRequestsByteIdenticalToSync) {
  // A shared pool of sequences with mixed lengths 8..96; views into it
  // stay valid for the whole test.
  constexpr std::size_t kPool = 96;
  std::vector<std::vector<char_t>> pool;
  pool.reserve(kPool);
  for (std::size_t i = 0; i < kPool; ++i)
    pool.push_back(random_codes(8 + (i * 7) % 89, 1000 + i));
  const auto mix = option_mix();

  config cfg;
  cfg.max_batch = 32;
  cfg.max_linger = std::chrono::microseconds(500);
  cfg.queue_capacity = 256;
  cfg.max_outstanding = 1024;
  cfg.policy = backpressure::block;
  aligner svc(cfg);

  struct record {
    std::size_t q_idx, s_idx, opt_idx;
    alignment_result got;
  };
  std::vector<std::vector<record>> results(kProducers);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      auto& out = results[p];
      out.reserve(kPerProducer);
      std::vector<std::pair<ticket, record>> window;
      window.reserve(kWindow);
      const auto drain_one = [&] {
        out.push_back(std::move(window.front().second));
        out.back().got = window.front().first.get();
        window.erase(window.begin());
      };
      for (int i = 0; i < kPerProducer; ++i) {
        // Deterministic but producer-specific request pattern.
        const std::size_t q_idx = (p * 131 + i * 17) % kPool;
        const std::size_t s_idx = (p * 197 + i * 29) % kPool;
        const std::size_t opt_idx =
            (static_cast<std::size_t>(p) + i) % mix.size();
        auto t = svc.submit(view(pool[q_idx]), view(pool[s_idx]),
                            mix[opt_idx]);
        window.emplace_back(std::move(t), record{q_idx, s_idx, opt_idx, {}});
        if (window.size() >= kWindow) drain_one();
      }
      while (!window.empty()) drain_one();
    });
  }
  for (auto& t : producers) t.join();

  svc.shutdown(/*drain=*/true);

  // Clean drain, zero leaked tickets.
  const auto snap = svc.stats();
  EXPECT_EQ(snap.accepted, static_cast<std::uint64_t>(kProducers) *
                               kPerProducer);
  EXPECT_EQ(snap.completed + snap.failed, snap.accepted);
  EXPECT_EQ(snap.failed, 0u);
  EXPECT_EQ(snap.outstanding_tickets, 0u);
  EXPECT_EQ(snap.queue_depth, 0u);
  EXPECT_EQ(snap.in_flight_batches, 0u);
  EXPECT_GE(snap.mean_batch_occupancy, 1.0);
  EXPECT_GT(snap.latency_samples, 0u);
  RecordProperty("mean_batch_occupancy", snap.mean_batch_occupancy);
  std::printf("stress: %llu requests in %llu batches (occupancy %.2f), "
              "p50 %llu ns, p99 %llu ns\n",
              static_cast<unsigned long long>(snap.batched_requests),
              static_cast<unsigned long long>(snap.batches),
              snap.mean_batch_occupancy,
              static_cast<unsigned long long>(snap.p50_latency_ns),
              static_cast<unsigned long long>(snap.p99_latency_ns));

  // Byte-identical to synchronous align(), request by request.
  std::size_t tag = 0;
  for (const auto& per_producer : results) {
    ASSERT_EQ(per_producer.size(), static_cast<std::size_t>(kPerProducer));
    for (const auto& r : per_producer) {
      const auto want =
          align(view(pool[r.q_idx]), view(pool[r.s_idx]), mix[r.opt_idx]);
      expect_identical(r.got, want, tag);
      ++tag;
    }
  }
}

}  // namespace
}  // namespace anyseq::service
