/// Tests for request-lifecycle tracing and the metrics/trace exporters:
/// the collector's ring recording and Chrome-trace JSON dump, the
/// disarmed fast path, span coverage of real service traffic, the
/// Prometheus dump through service and group, and the C API surface
/// (anyseq_tracing_start/stop, anyseq_service_dump_metrics/trace).

#include "service/trace.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "capi/anyseq_c.h"
#include "service/router.hpp"
#include "service/service.hpp"
#include "testutil.hpp"

namespace anyseq::service {
namespace {

using test::random_codes;
using test::view;

std::string dump_json(const trace::collector& c) {
  const std::size_t need = c.dump_chrome_json(nullptr, 0);
  std::vector<char> buf(need + 1);
  EXPECT_EQ(c.dump_chrome_json(buf.data(), buf.size()), need);
  return std::string(buf.data());
}

/// RAII disarm so a failing assertion can't leak an armed collector
/// into later tests.
struct scoped_arm {
  explicit scoped_arm(trace::collector& c) { trace::arm(c); }
  ~scoped_arm() { trace::disarm(); }
};

TEST(TraceCollector, DisarmedIsInert) {
  EXPECT_FALSE(trace::armed());
  EXPECT_EQ(trace::now_if_armed(), 0);
  // emit/mark without a collector are no-ops, not crashes.
  trace::emit(trace::span::submit, 1, 123);
  trace::mark(trace::instant::shed, 2);
}

TEST(TraceCollector, RecordsAndDumpsChromeJson) {
  trace::collector col;
  {
    scoped_arm armed(col);
    ASSERT_TRUE(trace::armed());
    const std::int64_t t0 = trace::now_if_armed();
    ASSERT_GT(t0, 0);
    trace::emit(trace::span::submit, 7, t0, 1);
    trace::mark(trace::instant::brownout, 0, 3);
  }
  EXPECT_EQ(col.size(), 2u);
  EXPECT_EQ(col.dropped(), 0u);

  const std::string json = dump_json(col);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"submit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"brownout\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');

  // Truncated dumps follow the snprintf contract: same needed(),
  // NUL-terminated prefix.
  char small[32];
  const std::size_t need = col.dump_chrome_json(nullptr, 0);
  EXPECT_EQ(col.dump_chrome_json(small, sizeof(small)), need);
  EXPECT_EQ(std::strlen(small), sizeof(small) - 1);
  EXPECT_EQ(std::string(small), json.substr(0, sizeof(small) - 1));
}

TEST(TraceCollector, EmitIgnoresZeroStartTimestamp) {
  trace::collector col;
  scoped_arm armed(col);
  // A span opened while disarmed carries t0 == 0; emitting it after
  // arming must be dropped, not recorded with a garbage duration.
  trace::emit(trace::span::cache_probe, 1, 0);
  EXPECT_EQ(col.size(), 0u);
}

TEST(TraceCollector, RingWrapKeepsNewestAndCountsDropped) {
  trace::collector::config cfg;
  cfg.events_per_thread = 16;  // minimum ring
  cfg.max_threads = 1;
  trace::collector col(cfg);
  {
    scoped_arm armed(col);
    for (int i = 0; i < 40; ++i)
      trace::mark(trace::instant::shed, static_cast<std::uint32_t>(i), i);
  }
  EXPECT_EQ(col.size(), 16u);
  EXPECT_EQ(col.dropped(), 24u);
  const std::string json = dump_json(col);
  EXPECT_NE(json.find("\"dropped\":24"), std::string::npos);
  // Oldest surviving event is #24; #0 was overwritten.
  EXPECT_NE(json.find("\"id\":24"), std::string::npos);
  EXPECT_EQ(json.find("\"id\":0,"), std::string::npos);
}

TEST(TraceCollector, RearmRebindsThreadsToTheNewCollector) {
  trace::collector first;
  {
    scoped_arm armed(first);
    trace::mark(trace::instant::shed, 1);
  }
  trace::collector second;
  {
    scoped_arm armed(second);
    trace::mark(trace::instant::shed, 2);
  }
  // Each collector saw exactly its own event — the thread's stale
  // binding to `first` was generation-invalidated, not reused.
  EXPECT_EQ(first.size(), 1u);
  EXPECT_EQ(second.size(), 1u);
}

/// Real traffic end to end: every lifecycle span shows up in the trace
/// of a served workload, and cache hits mark the probe.
TEST(TraceService, LifecycleSpansCoverServedTraffic) {
  trace::collector col;
  {
    scoped_arm armed(col);
    service::config cfg;
    cfg.max_batch = 8;
    cfg.queue_capacity = 64;
    cfg.cache_capacity = 32;
    service::aligner svc(cfg);
    const auto q = random_codes(96, 5);
    const auto s = random_codes(96, 6);
    for (int round = 0; round < 3; ++round) {
      ticket ts[8];
      for (auto& t : ts) t = svc.submit(view(q), view(s));
      for (auto& t : ts) ASSERT_EQ(t.get().q_end, 96);
    }
    svc.shutdown(true);
  }
#if ANYSEQ_TRACING
  const std::string json = dump_json(col);
  for (const char* name :
       {"submit", "cache_probe", "ring_wait", "batch_collect",
        "kernel_execute", "complete"}) {
    EXPECT_NE(json.find(std::string("\"name\":\"") + name + "\""),
              std::string::npos)
        << name;
  }
#else
  EXPECT_EQ(col.size(), 0u);
#endif
}

TEST(TraceService, DumpMetricsRendersServedTraffic) {
  service::config cfg;
  cfg.max_batch = 8;
  cfg.queue_capacity = 64;
  service::aligner svc(cfg);
  const auto q = random_codes(80, 9);
  const auto s = random_codes(80, 10);
  for (int i = 0; i < 8; ++i) {
    auto t = svc.submit(view(q), view(s));
    ASSERT_EQ(t.get().q_end, 80);
  }
  svc.shutdown(true);

  const std::size_t need = svc.dump_metrics(nullptr, 0);
  ASSERT_GT(need, 0u);
  std::vector<char> buf(need + 1);
  EXPECT_EQ(svc.dump_metrics(buf.data(), buf.size()), need);
  const std::string text(buf.data());
  EXPECT_NE(text.find("anyseq_requests_total{class=\"interactive\","
                      "outcome=\"completed\"} 8\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE anyseq_request_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("anyseq_exec_requests_total"), std::string::npos);
  EXPECT_NE(text.find("anyseq_exec_gcups "), std::string::npos);
  // Executed requests are accounted exactly once across the table.
  const auto st = svc.stats();
  std::uint64_t exec_requests = 0;
  for (std::size_t r = 0; r < n_exec_routes; ++r)
    for (std::size_t v = 0; v < n_exec_variants; ++v)
      exec_requests += st.exec.at[r][v].requests;
  EXPECT_EQ(exec_requests, 8u);
  EXPECT_GT(st.exec.total_gcups(), 0.0);
}

TEST(TraceService, GroupDumpIncludesShardBreakdown) {
  service_group::config cfg;
  cfg.shards = 2;
  cfg.cache_capacity = 0;
  service_group group(cfg);
  const auto q = random_codes(64, 21);
  const auto s = random_codes(64, 22);
  for (int i = 0; i < 6; ++i) {
    auto t = group.submit(view(q), view(s));
    ASSERT_EQ(t.get().q_end, 64);
  }
  group.shutdown(true);

  const std::size_t need = group.dump_metrics(nullptr, 0);
  std::vector<char> buf(need + 1);
  EXPECT_EQ(group.dump_metrics(buf.data(), buf.size()), need);
  const std::string text(buf.data());
  EXPECT_NE(text.find("anyseq_shard_accepted_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("anyseq_shard_accepted_total{shard=\"1\"}"),
            std::string::npos);
  EXPECT_NE(text.find("anyseq_shard_queue_depth{shard=\"0\"} 0\n"),
            std::string::npos);
}

/// p90/p999 surfaced through service_stats and merged router stats.
TEST(TraceService, PercentileFieldsFilledAndOrdered) {
  service_group::config cfg;
  cfg.shards = 2;
  service_group group(cfg);
  for (int i = 0; i < 32; ++i) {
    const auto q = random_codes(64 + i, 100 + i);
    const auto s = random_codes(64 + i, 200 + i);
    auto t = group.submit(view(q), view(s));
    ASSERT_GT(t.get().q_end, 0);
  }
  group.shutdown(true);
  const auto st = group.stats();
  EXPECT_GT(st.p50_latency_ns, 0u);
  EXPECT_LE(st.p50_latency_ns, st.p90_latency_ns);
  EXPECT_LE(st.p90_latency_ns, st.p99_latency_ns);
  EXPECT_LE(st.p99_latency_ns, st.p999_latency_ns);
  const auto& ia = st.of(request_class::interactive);
  EXPECT_LE(ia.p90_latency_ns, ia.p999_latency_ns);
  EXPECT_EQ(ia.latency_hist.count, 32u);
}

// ---------------------------------------------------------------------
// C API
// ---------------------------------------------------------------------

TEST(CApiObservability, TracingStartStopAndDumps) {
  anyseq_service* svc = anyseq_service_create(8, 100, 64, 0);
  ASSERT_NE(svc, nullptr);

  // Dump-trace before tracing starts is a documented error.
  EXPECT_EQ(anyseq_service_dump_trace(svc, nullptr, 0), -1);

  ASSERT_EQ(anyseq_tracing_start(0), 0);
  EXPECT_EQ(anyseq_tracing_start(0), -1);  // double start

  anyseq_ticket* t = anyseq_service_submit(
      svc, "ACGTACGTACGT", "ACGTCCGTACGT", ANYSEQ_ALIGN_GLOBAL, 2, -1, 0,
      -1, 0);
  ASSERT_NE(t, nullptr);
  EXPECT_GT(anyseq_service_wait(t, nullptr, nullptr), 0);

  const int64_t trace_need = anyseq_service_dump_trace(svc, nullptr, 0);
  ASSERT_GT(trace_need, 0);
  std::vector<char> trace_buf(static_cast<std::size_t>(trace_need) + 1);
  EXPECT_EQ(anyseq_service_dump_trace(svc, trace_buf.data(),
                                      trace_buf.size()),
            trace_need);
  EXPECT_NE(std::string(trace_buf.data()).find("\"traceEvents\":["),
            std::string::npos);

  const int64_t m_need = anyseq_service_dump_metrics(svc, nullptr, 0);
  ASSERT_GT(m_need, 0);
  std::vector<char> m_buf(static_cast<std::size_t>(m_need) + 1);
  EXPECT_EQ(anyseq_service_dump_metrics(svc, m_buf.data(), m_buf.size()),
            m_need);
  EXPECT_NE(std::string(m_buf.data()).find("anyseq_requests_total"),
            std::string::npos);

  EXPECT_EQ(anyseq_tracing_stop(), 0);
  EXPECT_EQ(anyseq_tracing_stop(), -1);  // double stop
  EXPECT_EQ(anyseq_service_dump_trace(svc, nullptr, 0), -1);

  EXPECT_EQ(anyseq_service_dump_metrics(nullptr, nullptr, 0), -1);
  anyseq_service_destroy(svc);
}

TEST(CApiObservability, StatsExposeNewPercentileFields) {
  anyseq_service* svc = anyseq_service_create(8, 100, 64, 0);
  ASSERT_NE(svc, nullptr);
  for (int i = 0; i < 8; ++i) {
    anyseq_ticket* t = anyseq_service_submit(
        svc, "ACGTACGTACGTACGTACGT", "ACGTACCTACGTACGAACGT",
        ANYSEQ_ALIGN_GLOBAL, 2, -1, 0, -1, 0);
    ASSERT_NE(t, nullptr);
    (void)anyseq_service_wait(t, nullptr, nullptr);
  }
  anyseq_service_stats st;
  ASSERT_EQ(anyseq_service_get_stats(svc, &st), 0);
  EXPECT_GT(st.p90_latency_ns, 0u);
  EXPECT_LE(st.p90_latency_ns, st.p999_latency_ns);
  EXPECT_LE(st.p50_latency_ns, st.p90_latency_ns);
  EXPECT_GT(st.interactive_p999_latency_ns, 0u);
  EXPECT_EQ(st.bulk_p999_latency_ns, 0u);  // no bulk traffic submitted
  anyseq_service_destroy(svc);
}

}  // namespace
}  // namespace anyseq::service
