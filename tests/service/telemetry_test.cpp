/// Tests for the telemetry primitives behind the serving tier's
/// observability surface: nearest-rank percentiles (p50/p90/p99/p99.9)
/// with their edge cases, the log2 latency histogram's bucket math and
/// exact bucket-wise merge, the execution-accounting table, and the
/// text_buffer snprintf sizing contract — plus the shard-merge
/// discipline checked against a whole-population oracle.

#include "service/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "service/metrics.hpp"

namespace anyseq::service {
namespace {

// ---------------------------------------------------------------------
// nearest_rank_percentiles edge cases
// ---------------------------------------------------------------------

TEST(Percentiles, EmptyIsAllZero) {
  std::vector<std::uint64_t> v;
  const auto p = nearest_rank_percentiles(v);
  EXPECT_EQ(p.p50, 0u);
  EXPECT_EQ(p.p90, 0u);
  EXPECT_EQ(p.p99, 0u);
  EXPECT_EQ(p.p999, 0u);
  EXPECT_EQ(p.samples, 0u);
}

TEST(Percentiles, SingleSampleIsEveryRank) {
  std::vector<std::uint64_t> v = {42};
  const auto p = nearest_rank_percentiles(v);
  EXPECT_EQ(p.p50, 42u);
  EXPECT_EQ(p.p90, 42u);
  EXPECT_EQ(p.p99, 42u);
  EXPECT_EQ(p.p999, 42u);
  EXPECT_EQ(p.samples, 1u);
}

TEST(Percentiles, AllDuplicatesCollapse) {
  std::vector<std::uint64_t> v(1000, 7);
  const auto p = nearest_rank_percentiles(v);
  EXPECT_EQ(p.p50, 7u);
  EXPECT_EQ(p.p90, 7u);
  EXPECT_EQ(p.p99, 7u);
  EXPECT_EQ(p.p999, 7u);
  EXPECT_EQ(p.samples, 1000u);
}

TEST(Percentiles, KnownDistributionExactRanks) {
  // 1..1000: nearest-rank pX is ceil(X/100 * 1000)-th smallest.
  std::vector<std::uint64_t> v(1000);
  for (std::uint64_t i = 0; i < 1000; ++i) v[i] = 1000 - i;  // unsorted
  const auto p = nearest_rank_percentiles(v);
  EXPECT_EQ(p.p50, 500u);
  EXPECT_EQ(p.p90, 900u);
  EXPECT_EQ(p.p99, 990u);
  EXPECT_EQ(p.p999, 999u);
  EXPECT_EQ(p.samples, 1000u);
}

TEST(Percentiles, SmallSampleRanksCeil) {
  // n = 3: rank(p) = ceil(p * 3); p50 -> 2nd, p90/p99/p999 -> 3rd.
  std::vector<std::uint64_t> v = {30, 10, 20};
  const auto p = nearest_rank_percentiles(v);
  EXPECT_EQ(p.p50, 20u);
  EXPECT_EQ(p.p90, 30u);
  EXPECT_EQ(p.p99, 30u);
  EXPECT_EQ(p.p999, 30u);
}

TEST(Percentiles, P999NeedsThousandSamplesToLeaveMax) {
  // Below 1000 samples p99.9's nearest rank is the maximum; at exactly
  // 1000 distinct samples it is the 999th — one below the max.
  std::vector<std::uint64_t> small(999);
  for (std::uint64_t i = 0; i < 999; ++i) small[i] = i + 1;
  EXPECT_EQ(nearest_rank_percentiles(small).p999, 999u);

  std::vector<std::uint64_t> full(2000);
  for (std::uint64_t i = 0; i < 2000; ++i) full[i] = i + 1;
  EXPECT_EQ(nearest_rank_percentiles(full).p999, 1998u);  // ceil(.999*2000)
}

/// Reservoir snapshot agrees with the free-function ranking when the
/// reservoir has seen fewer samples than its capacity (exact mode).
TEST(Percentiles, ReservoirSnapshotMatchesOracleBelowCapacity) {
  latency_reservoir r(4096);
  std::vector<std::uint64_t> all;
  std::mt19937_64 rng(99);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t ns = rng() % 1'000'000;
    r.record(ns);
    all.push_back(ns);
  }
  const auto got = r.snapshot();
  const auto want = nearest_rank_percentiles(all);
  EXPECT_EQ(got.p50, want.p50);
  EXPECT_EQ(got.p90, want.p90);
  EXPECT_EQ(got.p99, want.p99);
  EXPECT_EQ(got.p999, want.p999);
  EXPECT_EQ(got.samples, want.samples);
}

/// The shard-merge discipline: pooling the raw samples of several
/// reservoirs and re-ranking gives exactly the whole-population answer
/// (below capacity), which NO combination of per-shard percentiles can
/// reproduce on a skewed split.
TEST(Percentiles, ShardMergeMatchesWholePopulationOracle) {
  // Shard 0 gets the slow tail, shards 1-3 the fast bulk — the worst
  // case for any "average the p99s" shortcut.
  latency_reservoir shard[4] = {
      latency_reservoir(4096), latency_reservoir(4096),
      latency_reservoir(4096), latency_reservoir(4096)};
  std::vector<std::uint64_t> population;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 900; ++i) {
    const std::uint64_t slow = 1'000'000 + rng() % 9'000'000;
    shard[0].record(slow);
    population.push_back(slow);
  }
  for (int s = 1; s < 4; ++s)
    for (int i = 0; i < 900; ++i) {
      const std::uint64_t fast = 1'000 + rng() % 9'000;
      shard[s].record(fast);
      population.push_back(fast);
    }

  std::vector<std::uint64_t> pooled;
  for (auto& r : shard) r.collect(pooled);
  const auto merged = nearest_rank_percentiles(pooled);

  std::vector<std::uint64_t> oracle = population;
  const auto want = nearest_rank_percentiles(oracle);
  EXPECT_EQ(merged.p50, want.p50);
  EXPECT_EQ(merged.p90, want.p90);
  EXPECT_EQ(merged.p99, want.p99);
  EXPECT_EQ(merged.p999, want.p999);
  EXPECT_EQ(merged.samples, population.size());

  // And the naive combination really is wrong here: every per-shard p50
  // is far from the pooled p50's regime boundary.
  std::uint64_t mean_p50 = 0;
  for (auto& r : shard) mean_p50 += r.snapshot().p50;
  mean_p50 /= 4;
  EXPECT_NE(mean_p50, merged.p50);
}

// ---------------------------------------------------------------------
// log2 latency histogram
// ---------------------------------------------------------------------

TEST(LatencyHistogram, BucketMath) {
  // Bucket i covers [2^i, 2^(i+1)); 0 ns lands in bucket 0.
  EXPECT_EQ(latency_histogram::bucket_of(0), 0u);
  EXPECT_EQ(latency_histogram::bucket_of(1), 0u);
  EXPECT_EQ(latency_histogram::bucket_of(2), 1u);
  EXPECT_EQ(latency_histogram::bucket_of(3), 1u);
  EXPECT_EQ(latency_histogram::bucket_of(4), 2u);
  EXPECT_EQ(latency_histogram::bucket_of(1023), 9u);
  EXPECT_EQ(latency_histogram::bucket_of(1024), 10u);
  // Saturates at the top bucket instead of indexing out of range.
  EXPECT_EQ(latency_histogram::bucket_of(~std::uint64_t{0}),
            n_latency_buckets - 1);
  // Upper edge of bucket i is 2^(i+1) - 1 (inclusive).
  EXPECT_EQ(latency_histogram::bucket_upper_ns(0), 1u);
  EXPECT_EQ(latency_histogram::bucket_upper_ns(1), 3u);
  EXPECT_EQ(latency_histogram::bucket_upper_ns(9), 1023u);
  for (std::size_t i = 0; i + 1 < n_latency_buckets; ++i)
    EXPECT_EQ(latency_histogram::bucket_of(
                  latency_histogram::bucket_upper_ns(i) + 1),
              i + 1)
        << i;
}

TEST(LatencyHistogram, RecordAndSnapshot) {
  latency_histogram h;
  const auto empty = h.snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.sum_ns, 0u);

  h.record(1);     // bucket 0
  h.record(1000);  // bucket 9
  h.record(1000);  // bucket 9
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum_ns, 2001u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[9], 2u);
  std::uint64_t total = 0;
  for (const auto b : s.buckets) total += b;
  EXPECT_EQ(total, s.count);
}

TEST(LatencyHistogram, MergeIsExactBucketwiseSum) {
  // Split one sample stream across two histograms; the merge must be
  // byte-identical to a single histogram that saw everything (this is
  // the property the shard merge relies on — unlike the sampled
  // percentiles, histograms lose nothing).
  latency_histogram a, b, whole;
  std::mt19937_64 rng(11);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t ns = rng() % (1u << 30);
    (i % 3 == 0 ? a : b).record(ns);
    whole.record(ns);
  }
  histogram_snapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  const auto want = whole.snapshot();
  EXPECT_EQ(merged.count, want.count);
  EXPECT_EQ(merged.sum_ns, want.sum_ns);
  for (std::size_t i = 0; i < n_latency_buckets; ++i)
    EXPECT_EQ(merged.buckets[i], want.buckets[i]) << "bucket " << i;
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity) {
  latency_histogram h;
  h.record(123);
  auto s = h.snapshot();
  s.merge(histogram_snapshot{});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.sum_ns, 123u);

  histogram_snapshot empty;
  empty.merge(h.snapshot());
  EXPECT_EQ(empty.count, 1u);
  EXPECT_EQ(empty.sum_ns, 123u);
}

// ---------------------------------------------------------------------
// execution accounting
// ---------------------------------------------------------------------

TEST(ExecSnapshot, MergeAndGcups) {
  exec_snapshot a, b;
  a.at[0][1] = {10, 1'000'000, 500'000};  // 1e6 cells in 0.5 ms -> 2 GCUPS
  b.at[0][1] = {5, 500'000, 250'000};
  b.at[2][0] = {1, 100, 100};
  a.merge(b);
  EXPECT_EQ(a.at[0][1].requests, 15u);
  EXPECT_EQ(a.at[0][1].cells, 1'500'000u);
  EXPECT_EQ(a.at[0][1].ns, 750'000u);
  EXPECT_EQ(a.at[2][0].requests, 1u);
  EXPECT_NEAR(a.total_gcups(), (1'500'000.0 + 100.0) / (750'000.0 + 100.0),
              1e-12);
}

TEST(ExecSnapshot, NamesAndVariantIndex) {
  EXPECT_STREQ(exec_route_name(0), "batch_score");
  EXPECT_STREQ(exec_route_name(1), "batch_traceback");
  EXPECT_STREQ(exec_route_name(2), "solo");
  EXPECT_EQ(exec_variant_index("scalar"), 0u);
  EXPECT_EQ(exec_variant_index("avx2"), 1u);
  EXPECT_EQ(exec_variant_index("avx512"), 2u);
  EXPECT_EQ(exec_variant_index("something_else"), 3u);
  EXPECT_EQ(exec_variant_index(nullptr), 3u);
  EXPECT_STREQ(exec_variant_name(3), "other");
}

// ---------------------------------------------------------------------
// text_buffer sizing contract
// ---------------------------------------------------------------------

TEST(TextBuffer, NullBufferCountsOnly) {
  text_buffer tb(nullptr, 0);
  tb.printf("hello %d", 42);
  EXPECT_EQ(tb.needed(), 8u);
}

TEST(TextBuffer, WritesWhatFitsAndCountsEverything) {
  char buf[8];
  text_buffer tb(buf, sizeof(buf));
  tb.printf("0123456789");  // needs 10, fits 7 + NUL
  EXPECT_EQ(tb.needed(), 10u);
  EXPECT_STREQ(buf, "0123456");

  // Further appends past capacity keep counting, never write.
  tb.printf("abc");
  EXPECT_EQ(tb.needed(), 13u);
  EXPECT_STREQ(buf, "0123456");
}

TEST(TextBuffer, TwoCallSizingRoundTrip) {
  text_buffer probe(nullptr, 0);
  probe.printf("a=%d b=%s\n", 7, "xyz");
  std::vector<char> buf(probe.needed() + 1);
  text_buffer out(buf.data(), buf.size());
  out.printf("a=%d b=%s\n", 7, "xyz");
  EXPECT_EQ(out.needed(), probe.needed());
  EXPECT_STREQ(buf.data(), "a=7 b=xyz\n");
}

// ---------------------------------------------------------------------
// Prometheus rendering sanity (full-contract checks live in
// scripts/check_observability.py; this guards the C++-visible parts)
// ---------------------------------------------------------------------

TEST(RenderPrometheus, HistogramSeriesAreCumulativeAndInfEqualsCount) {
  service_stats s;
  s.accepted = 3;
  s.completed = 3;
  auto& cls = s.per_class[0];
  cls.completed = 3;
  latency_histogram h;
  h.record(800);        // ~bucket 9
  h.record(70'000);     // ~bucket 16
  h.record(2'000'000);  // ~bucket 20
  cls.latency_hist = h.snapshot();

  text_buffer probe(nullptr, 0);
  render_prometheus(s, probe);
  std::vector<char> buf(probe.needed() + 1);
  text_buffer out(buf.data(), buf.size());
  render_prometheus(s, out);
  const std::string text(buf.data());

  EXPECT_NE(text.find("anyseq_requests_total{class=\"interactive\","
                      "outcome=\"completed\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("anyseq_request_latency_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("anyseq_request_latency_seconds_count"
                      "{class=\"interactive\"} 3\n"),
            std::string::npos);
  // Sum is in seconds.
  EXPECT_NE(text.find("anyseq_request_latency_seconds_sum"
                      "{class=\"interactive\"} 0.002070800\n"),
            std::string::npos);
}

}  // namespace
}  // namespace anyseq::service
