/// Chaos tests for the serving tier: a 32-seed deterministic
/// fault-injection sweep (poisoned requests, batch alloc failures,
/// batcher deaths, clock skew), replay determinism of the poison
/// schedule, and the watchdog restart -> brownout state machine.
///
/// Invariants under every schedule:
///   * no ticket hangs (every wait is bounded; a hang is a failure),
///   * a surviving request's result is byte-identical to synchronous
///     align() — fault containment never perturbs innocents,
///   * every failure carries one of the typed service errors, and an
///     injected_fault surfaces only for a fingerprint the schedule
///     actually poisons,
///   * after drain-shutdown the counters balance: no slot, ticket, or
///     request is lost.

#include "service/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "service/cache.hpp"
#include "service/faultinject.hpp"
#include "testutil.hpp"

namespace anyseq::service {
namespace {

using test::random_codes;
using test::view;
using namespace std::chrono_literals;

/// Field-by-field identity with a synchronous align() result.
void expect_identical(const alignment_result& got,
                      const alignment_result& want) {
  EXPECT_EQ(got.score, want.score);
  EXPECT_EQ(got.q_begin, want.q_begin);
  EXPECT_EQ(got.q_end, want.q_end);
  EXPECT_EQ(got.s_begin, want.s_begin);
  EXPECT_EQ(got.s_end, want.s_end);
  EXPECT_EQ(got.q_aligned, want.q_aligned);
  EXPECT_EQ(got.s_aligned, want.s_aligned);
  EXPECT_EQ(got.cigar, want.cigar);
  EXPECT_EQ(got.has_alignment, want.has_alignment);
  EXPECT_EQ(got.cells, want.cells);
  ASSERT_NE(got.variant, nullptr);
  ASSERT_NE(want.variant, nullptr);
  EXPECT_STREQ(got.variant, want.variant);
}

/// RAII arm/disarm so no failure path leaves a schedule dangling.
class armed_schedule {
 public:
  explicit armed_schedule(const fault::schedule::config& cfg) : sched_(cfg) {
    fault::arm(sched_);
  }
  ~armed_schedule() { fault::disarm(); }
  fault::schedule& operator*() noexcept { return sched_; }
  fault::schedule* operator->() noexcept { return &sched_; }

 private:
  fault::schedule sched_;
};

struct request {
  std::vector<char_t> q, s;
  align_options opt;
  bool has_deadline = false;
  std::uint64_t fp = 0;
};

std::vector<request> make_requests(std::uint64_t seed, int n) {
  std::vector<request> reqs;
  reqs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    request r;
    r.q = random_codes(16 + (i % 3) * 16,
                       static_cast<unsigned>(seed * 1000 + 2 * i));
    r.s = random_codes(16 + (i % 4) * 8,
                       static_cast<unsigned>(seed * 1000 + 2 * i + 1));
    if (i % 3 == 2) r.opt.want_alignment = true;
    r.has_deadline = i % 4 == 3;
    r.fp = cache_key_hash(view(r.q), view(r.s), r.opt);
    reqs.push_back(std::move(r));
  }
  return reqs;
}

TEST(ServiceChaos, ThirtyTwoSeedSweepContainsEveryInjectedFault) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));

    fault::schedule::config fcfg;
    fcfg.seed = seed;
    fcfg.poison_rate = 0.08;
    fcfg.alloc_failure_rate = seed % 2 == 1 ? 0.15 : 0.0;
    fcfg.batcher_stall_rate = seed % 4 == 3 ? 0.02 : 0.0;
    fcfg.max_clock_skew_ns = seed % 3 == 0 ? 200'000 : 0;

    config cfg;
    cfg.max_batch = 8;
    cfg.max_linger = 200us;
    cfg.queue_capacity = 64;
    cfg.max_outstanding = 128;
    cfg.policy = backpressure::block;
    cfg.quarantine_capacity = 16;
    cfg.quarantine_threshold = 2;

    const auto reqs = make_requests(seed, 24);

    armed_schedule sched(fcfg);
    aligner svc(cfg);
    std::vector<ticket> tickets(reqs.size());
    std::vector<bool> submitted(reqs.size(), false);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      submit_options so;
      so.cls = i % 2 == 0 ? request_class::interactive : request_class::bulk;
      if (reqs[i].has_deadline)
        so.deadline = std::chrono::steady_clock::now() + 3ms;
      try {
        tickets[i] =
            svc.submit(view(reqs[i].q), view(reqs[i].s), reqs[i].opt, so);
        submitted[i] = true;
      } catch (const service_down_error&) {
        // Brownout refuses bulk at submit — legal only on stall seeds.
        EXPECT_GT(fcfg.batcher_stall_rate, 0.0);
      } catch (const quarantine_error&) {
        // Only a poisoned fingerprint can accumulate offenses.
        EXPECT_TRUE(sched->poisoned(reqs[i].fp));
      }
    }

    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (!submitted[i]) continue;
      // A hang is a failure, not a wedge: every ticket resolves.
      ASSERT_TRUE(tickets[i].wait_for(30s)) << "request " << i << " hung";
      try {
        const auto got = tickets[i].get();
        expect_identical(got,
                         align(view(reqs[i].q), view(reqs[i].s), reqs[i].opt));
        EXPECT_FALSE(sched->poisoned(reqs[i].fp))
            << "poisoned request " << i << " completed";
      } catch (const fault::injected_fault&) {
        EXPECT_TRUE(sched->poisoned(reqs[i].fp))
            << "clean request " << i << " got an injected fault";
      } catch (const deadline_error&) {
        EXPECT_TRUE(reqs[i].has_deadline)
            << "deadline-free request " << i << " expired";
      } catch (const service_down_error&) {
        EXPECT_GT(fcfg.batcher_stall_rate, 0.0)
            << "request " << i << " lost to a batcher death on a "
            << "stall-free seed";
      }
    }

    svc.shutdown(true);
    const auto snap = svc.stats();
    EXPECT_EQ(snap.outstanding_tickets, 0u);
    EXPECT_EQ(snap.queue_depth, 0u);
    EXPECT_EQ(snap.accepted, snap.completed + snap.failed);
    if (fcfg.batcher_stall_rate == 0.0) {
      EXPECT_EQ(snap.watchdog_restarts, 0u);
      EXPECT_FALSE(snap.brownout);
    }
  }
}

TEST(ServiceChaos, PoisonScheduleReplaysByteIdentically) {
  // Poison is sticky per fingerprint (no per-visit state), so two runs
  // of the same workload against the same seed must produce the exact
  // same per-request outcome — scores, errors, and counters.
  const auto reqs = make_requests(777, 16);

  struct outcome {
    bool ok = false;
    std::int64_t score = 0;
    std::string error;
  };
  const auto run = [&reqs] {
    fault::schedule::config fcfg;
    fcfg.seed = 777;
    fcfg.poison_rate = 0.25;

    config cfg;
    cfg.max_batch = 4;
    cfg.max_linger = 100us;
    cfg.max_inflight_batches = 1;  // serialized execution: stable order
    cfg.quarantine_capacity = 0;   // isolate the poison schedule itself

    armed_schedule sched(fcfg);
    aligner svc(cfg);
    std::vector<outcome> out(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      auto t = svc.submit(view(reqs[i].q), view(reqs[i].s), reqs[i].opt);
      try {
        out[i].score = t.get().score;
        out[i].ok = true;
      } catch (const error& e) {
        out[i].error = e.what();
      }
    }
    svc.shutdown(true);
    return out;
  };

  const auto first = run();
  const auto second = run();
  int poisoned = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(first[i].ok, second[i].ok) << "request " << i;
    EXPECT_EQ(first[i].score, second[i].score) << "request " << i;
    EXPECT_EQ(first[i].error, second[i].error) << "request " << i;
    poisoned += first[i].ok ? 0 : 1;
  }
  // Rate 0.25 over 16 distinct fingerprints: statistically certain to
  // poison at least one (and the fixed seed makes it reproducible).
  EXPECT_GT(poisoned, 0);
}

TEST(ServiceChaos, BisectionIsolatesPoisonWithoutHarmingBatchmates) {
  // One poisoned request inside a full batch: bisection must fail
  // exactly that ticket and deliver every batchmate byte-identically.
  const auto reqs = make_requests(4242, 8);
  fault::schedule::config fcfg;
  fcfg.poison_rate = 0.12;

  // poisoned(fp) is a pure function of (seed, fp), so scan seeds until
  // exactly one of the 8 fingerprints is poisoned — deterministic, and
  // at rate 0.12 roughly every third seed qualifies.
  std::size_t victim = reqs.size();
  for (std::uint64_t s = 1; s < 4096 && victim == reqs.size(); ++s) {
    fault::schedule probe({s, 0.0, fcfg.poison_rate, 0.0, 0});
    std::size_t hits = 0, last = 0;
    for (std::size_t i = 0; i < reqs.size(); ++i)
      if (probe.poisoned(reqs[i].fp)) {
        ++hits;
        last = i;
      }
    if (hits == 1) {
      victim = last;
      fcfg.seed = s;
    }
  }
  ASSERT_LT(victim, reqs.size()) << "no single-victim seed found";

  config cfg;
  cfg.max_batch = 8;
  cfg.max_linger = 200ms;  // absorb all 8 into one batch
  armed_schedule sched(fcfg);
  aligner svc(cfg);
  std::vector<ticket> tickets;
  for (const auto& r : reqs)
    tickets.push_back(svc.submit(view(r.q), view(r.s), r.opt));
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_TRUE(tickets[i].wait_for(30s));
    if (i == victim) {
      EXPECT_THROW((void)tickets[i].get(), fault::injected_fault);
    } else {
      expect_identical(tickets[i].get(),
                       align(view(reqs[i].q), view(reqs[i].s), reqs[i].opt));
    }
  }
  const auto snap = svc.stats();
  EXPECT_EQ(snap.completed, reqs.size() - 1);
  EXPECT_EQ(snap.failed, 1u);
}

TEST(ServiceChaos, WatchdogRestartsOnceThenBrownsOut) {
  // stall_rate = 1.0: the batcher dies the instant it sees queued work.
  // First death -> watchdog fails the queued ticket and restarts; second
  // death -> brownout: bulk refused at submit, interactive solo-executed.
  fault::schedule::config fcfg;
  fcfg.seed = 9;
  fcfg.batcher_stall_rate = 1.0;

  config cfg;
  cfg.watchdog_interval = 5ms;  // brisk detection, test stays fast

  armed_schedule sched(fcfg);
  aligner svc(cfg);
  const auto q = random_codes(24, 90);

  auto t1 = svc.submit(view(q), view(q));
  ASSERT_TRUE(t1.wait_for(30s));
  EXPECT_THROW((void)t1.get(), service_down_error);
  // The restart is observable before the second submission.
  bool restarted = false;
  for (int i = 0; i < 2000 && !restarted; ++i) {
    restarted = svc.stats().watchdog_restarts == 1;
    if (!restarted) std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(restarted);
  EXPECT_FALSE(svc.stats().brownout);

  auto t2 = svc.submit(view(q), view(q));
  ASSERT_TRUE(t2.wait_for(30s));
  EXPECT_THROW((void)t2.get(), service_down_error);
  bool browned = false;
  for (int i = 0; i < 2000 && !browned; ++i) {
    browned = svc.stats().brownout;
    if (!browned) std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(browned);
  EXPECT_EQ(svc.stats().watchdog_restarts, 1u);

  // Brownout: bulk is refused outright...
  submit_options bulk;
  bulk.cls = request_class::bulk;
  EXPECT_THROW((void)svc.submit(view(q), view(q), {}, bulk),
               service_down_error);
  // ...and interactive degrades to solo execution, still byte-identical.
  auto t3 = svc.submit(view(q), view(q));
  EXPECT_TRUE(t3.ready());  // completed inline at submit
  expect_identical(t3.get(), align(view(q), view(q)));

  svc.shutdown(true);
  const auto snap = svc.stats();
  EXPECT_EQ(snap.outstanding_tickets, 0u);
  EXPECT_EQ(snap.accepted, snap.completed + snap.failed);
}

TEST(ServiceChaos, ClockSkewShedsOnlyDeadlineCarriers) {
  // A lying clock (+-2ms) must never break liveness or byte-identity;
  // it may only flip deadline-carrying requests between "made it" and
  // "shed" — deadline-free requests are untouchable.
  fault::schedule::config fcfg;
  fcfg.seed = 31337;
  fcfg.max_clock_skew_ns = 2'000'000;

  armed_schedule sched(fcfg);
  aligner svc;
  const auto reqs = make_requests(31337, 12);
  std::vector<ticket> tickets;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    submit_options so;
    if (reqs[i].has_deadline)
      so.deadline = std::chrono::steady_clock::now() + 1ms;
    tickets.push_back(
        svc.submit(view(reqs[i].q), view(reqs[i].s), reqs[i].opt, so));
  }
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_TRUE(tickets[i].wait_for(30s));
    try {
      expect_identical(tickets[i].get(),
                       align(view(reqs[i].q), view(reqs[i].s), reqs[i].opt));
    } catch (const deadline_error&) {
      EXPECT_TRUE(reqs[i].has_deadline);
    }
  }
  svc.shutdown(true);
  EXPECT_EQ(svc.stats().outstanding_tickets, 0u);
}

}  // namespace
}  // namespace anyseq::service
