/// Unit tests for the pure coalescing policy (service/batcher.hpp):
/// route classification, option compatibility, and lane ordering — the
/// decisions that make batched results byte-identical to synchronous
/// align() calls.

#include "service/batcher.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace anyseq::service {
namespace {

using test::random_codes;
using test::view;

class BatcherRoutes : public ::testing::Test {
 protected:
  std::vector<char_t> a = random_codes(16, 1);
  std::vector<char_t> b = random_codes(16, 2);
  std::vector<char_t> empty;
};

TEST_F(BatcherRoutes, GlobalScoreOnlyBatches) {
  align_options opt;  // defaults: global, score-only, auto backend
  EXPECT_EQ(classify(view(a), view(b), opt), route::batch_score);
}

TEST_F(BatcherRoutes, SmallTracebackBatches) {
  align_options opt;
  opt.want_alignment = true;
  EXPECT_EQ(classify(view(a), view(b), opt), route::batch_traceback);
}

TEST_F(BatcherRoutes, OversizedTracebackGoesSolo) {
  // align() would take the divide & conquer path here; align_batch's
  // full-matrix traceback would not be byte-identical.
  align_options opt;
  opt.want_alignment = true;
  opt.full_matrix_cells = 4;  // 16*16 = 256 > 4
  EXPECT_EQ(classify(view(a), view(b), opt), route::solo);
}

TEST_F(BatcherRoutes, NonGlobalScoreOnlyGoesSolo) {
  // The argmax tie-breaking of the batch kernel and the tiled engine
  // may differ for local/semiglobal end cells.
  align_options opt;
  opt.kind = align_kind::local;
  EXPECT_EQ(classify(view(a), view(b), opt), route::solo);
  opt.kind = align_kind::semiglobal;
  EXPECT_EQ(classify(view(a), view(b), opt), route::solo);
  opt.kind = align_kind::extension;
  EXPECT_EQ(classify(view(a), view(b), opt), route::solo);
}

TEST_F(BatcherRoutes, SimulatorBackendsGoSolo) {
  align_options opt;
  opt.exec = backend::gpu_sim;
  EXPECT_EQ(classify(view(a), view(b), opt), route::solo);
  opt.exec = backend::fpga_sim;
  EXPECT_EQ(classify(view(a), view(b), opt), route::solo);
}

TEST_F(BatcherRoutes, EmptySequencesGoSolo) {
  align_options opt;
  EXPECT_EQ(classify(view(empty), view(b), opt), route::solo);
  EXPECT_EQ(classify(view(a), view(empty), opt), route::solo);
}

TEST_F(BatcherRoutes, ForcedCpuBackendsBatch) {
  align_options opt;
  for (const backend exec : {backend::scalar, backend::simd_avx2,
                             backend::simd_avx512, backend::auto_select}) {
    opt.exec = exec;
    EXPECT_EQ(classify(view(a), view(b), opt), route::batch_score)
        << to_string(exec);
  }
}

TEST(BatcherCompat, IdenticalOptionsAreCompatible) {
  align_options a, b;
  EXPECT_TRUE(options_compatible(a, b));
}

TEST(BatcherCompat, EveryDispatchFieldIsABoundary) {
  const align_options base;
  const auto differs = [&](auto mutate) {
    align_options m = base;
    mutate(m);
    return !options_compatible(base, m) && !options_compatible(m, base);
  };
  EXPECT_TRUE(differs([](align_options& o) { o.kind = align_kind::local; }));
  EXPECT_TRUE(differs([](align_options& o) { o.want_alignment = true; }));
  EXPECT_TRUE(differs([](align_options& o) { o.match = 3; }));
  EXPECT_TRUE(differs([](align_options& o) { o.mismatch = -2; }));
  EXPECT_TRUE(differs([](align_options& o) { o.gap_open = -2; }));
  EXPECT_TRUE(differs([](align_options& o) { o.gap_extend = -3; }));
  EXPECT_TRUE(differs([](align_options& o) { o.exec = backend::scalar; }));
  EXPECT_TRUE(differs([](align_options& o) { o.threads = 2; }));
  EXPECT_TRUE(differs([](align_options& o) { o.tile = 128; }));
  EXPECT_TRUE(differs([](align_options& o) { o.dynamic_schedule = false; }));
  EXPECT_TRUE(differs([](align_options& o) { o.full_matrix_cells = 64; }));
  EXPECT_TRUE(
      differs([](align_options& o) { o.matrix = dna_default_matrix(); }));
  EXPECT_TRUE(differs(
      [](align_options& o) { o.precision = score_precision::int16; }));
  EXPECT_TRUE(differs([](align_options& o) { o.pad_waste_cap_pct = 0; }));
}

TEST(BatcherCompat, MatrixContentsMatter) {
  align_options a, b;
  a.matrix = dna_default_matrix();
  b.matrix = dna_default_matrix();
  EXPECT_TRUE(options_compatible(a, b));
  b.matrix->set(0, 0, 42);
  EXPECT_FALSE(options_compatible(a, b));
}

TEST(BatcherLaneOrder, GroupsBySizeThenKey) {
  // (q, s, key) triples: primary q length, then s length, then key.
  EXPECT_TRUE(lane_order_less(8, 8, 1, 16, 8, 0));
  EXPECT_FALSE(lane_order_less(16, 8, 0, 8, 8, 1));
  EXPECT_TRUE(lane_order_less(8, 4, 1, 8, 8, 0));
  EXPECT_TRUE(lane_order_less(8, 8, 0, 8, 8, 1));
  EXPECT_FALSE(lane_order_less(8, 8, 1, 8, 8, 1));  // irreflexive
}

TEST(BatcherLaneOrder, FullShapeSortFormsNearShapeRunsDeterministically) {
  // Sorting batch members with lane_order_less must order by the FULL
  // (|q|, |s|) shape: equal shapes become adjacent (uniform SIMD chunks)
  // and near-shapes become contiguous runs the ragged lane-padding
  // kernel can admit under a small waste cap.  The key tie-break makes
  // the result independent of input order.
  struct member {
    index_t q, s;
    std::uint64_t key;
  };
  std::vector<member> in = {
      {150, 152, 7}, {148, 150, 3}, {150, 150, 5}, {148, 150, 1},
      {152, 148, 6}, {150, 150, 2}, {148, 152, 4}, {150, 152, 0},
  };
  const auto by_lane_order = [](const member& x, const member& y) {
    return lane_order_less(x.q, x.s, x.key, y.q, y.s, y.key);
  };
  auto sorted = in;
  std::sort(sorted.begin(), sorted.end(), by_lane_order);
  const std::vector<member> want = {
      {148, 150, 1}, {148, 150, 3}, {148, 152, 4}, {150, 150, 2},
      {150, 150, 5}, {150, 152, 0}, {150, 152, 7}, {152, 148, 6},
  };
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(sorted[i].q, want[i].q) << "slot " << i;
    EXPECT_EQ(sorted[i].s, want[i].s) << "slot " << i;
    EXPECT_EQ(sorted[i].key, want[i].key) << "slot " << i;
  }
  // Determinism: any input permutation sorts to the same sequence.
  std::reverse(in.begin(), in.end());
  std::sort(in.begin(), in.end(), by_lane_order);
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_EQ(in[i].key, want[i].key) << "permuted slot " << i;
}

}  // namespace
}  // namespace anyseq::service
