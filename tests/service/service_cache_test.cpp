/// Correctness tests for the serving tier's response cache: randomized
/// differential against synchronous align() across every dispatch route
/// (including forced int8/int16 precision and the bit-parallel engine),
/// eviction behaviour under capacity pressure, and option
/// discrimination — equal sequences with different options must never
/// share an entry.

#include "service/cache.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "service/service.hpp"
#include "testutil.hpp"

namespace anyseq::service {
namespace {

using test::mutate;
using test::random_codes;
using test::view;

/// Field-by-field identity with a synchronous align() result.
void expect_identical(const alignment_result& got,
                      const alignment_result& want) {
  EXPECT_EQ(got.score, want.score);
  EXPECT_EQ(got.q_begin, want.q_begin);
  EXPECT_EQ(got.q_end, want.q_end);
  EXPECT_EQ(got.s_begin, want.s_begin);
  EXPECT_EQ(got.s_end, want.s_end);
  EXPECT_EQ(got.q_aligned, want.q_aligned);
  EXPECT_EQ(got.s_aligned, want.s_aligned);
  EXPECT_EQ(got.cigar, want.cigar);
  EXPECT_EQ(got.has_alignment, want.has_alignment);
  EXPECT_EQ(got.cells, want.cells);
}

/// Option sets spanning every dispatch route the cache can front:
/// batch-score, batch-traceback, solo (matrix / local traceback),
/// adaptive-precision forced narrow, and the bit-parallel engine.
std::vector<align_options> route_spanning_options() {
  std::vector<align_options> out;

  align_options score_only;  // batch_score route
  out.push_back(score_only);

  align_options local = score_only;
  local.kind = align_kind::local;
  out.push_back(local);

  align_options semi = score_only;
  semi.kind = align_kind::semiglobal;
  semi.gap_open = -3;  // affine
  out.push_back(semi);

  align_options traceback;  // batch_traceback route
  traceback.want_alignment = true;
  out.push_back(traceback);

  align_options local_tb = traceback;  // solo route (local traceback)
  local_tb.kind = align_kind::local;
  out.push_back(local_tb);

  align_options matrix = score_only;  // solo route (matrix scoring)
  matrix.matrix = dna_matrix_scoring::uniform(2, -1);
  out.push_back(matrix);

  align_options int8 = score_only;  // forced 8-bit checked kernel
  int8.precision = score_precision::int8;
  out.push_back(int8);

  align_options int16 = score_only;  // forced 16-bit checked kernel
  int16.precision = score_precision::int16;
  out.push_back(int16);

  align_options bitpar;  // Myers bit-parallel engine (unit-cost only)
  bitpar.match = 0;
  bitpar.mismatch = -1;
  bitpar.gap_open = 0;
  bitpar.gap_extend = -1;
  bitpar.precision = score_precision::bitpar;
  out.push_back(bitpar);

  return out;
}

// -------------------------------------------------------------------
// response_cache unit tests
// -------------------------------------------------------------------

TEST(ServiceCacheUnit, InsertLookupRoundTrip) {
  response_cache cache(response_cache::config{64, 4});
  const auto q = random_codes(50, 1);
  const auto s = random_codes(48, 2);
  const align_options opt;

  alignment_result out;
  EXPECT_FALSE(cache.lookup(view(q), view(s), opt, out));

  const auto want = align(view(q), view(s), opt);
  cache.insert(view(q), view(s), opt, want);

  ASSERT_TRUE(cache.lookup(view(q), view(s), opt, out));
  expect_identical(out, want);

  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.insertions, 1u);
  EXPECT_EQ(st.entries, 1u);
}

TEST(ServiceCacheUnit, OverwriteSameKeyKeepsOneEntry) {
  response_cache cache(response_cache::config{64, 1});
  const auto q = random_codes(30, 3);
  const auto s = random_codes(30, 4);
  const align_options opt;
  const auto r = align(view(q), view(s), opt);
  cache.insert(view(q), view(s), opt, r);
  cache.insert(view(q), view(s), opt, r);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().insertions, 2u);
}

TEST(ServiceCacheUnit, DistinctOptionsGetDistinctEntries) {
  response_cache cache(response_cache::config{256, 2});
  const auto q = random_codes(40, 5);
  const auto s = random_codes(44, 6);
  const auto opts = route_spanning_options();
  for (const auto& opt : opts)
    cache.insert(view(q), view(s), opt, align(view(q), view(s), opt));
  EXPECT_EQ(cache.stats().entries, opts.size());
  // Every variant must come back as its own result.
  for (const auto& opt : opts) {
    alignment_result out;
    ASSERT_TRUE(cache.lookup(view(q), view(s), opt, out));
    expect_identical(out, align(view(q), view(s), opt));
  }
}

TEST(ServiceCacheUnit, SwappedAndShiftedKeysDoNotCollide) {
  // (AB, C) vs (A, BC): equal concatenated bytes, different split — the
  // length delimiter in the key hash has to keep them apart.
  response_cache cache(response_cache::config{64, 1});
  const std::vector<char_t> ab = {0, 1, 2, 3}, c = {1, 1};
  const std::vector<char_t> a = {0, 1}, bc = {2, 3, 1, 1};
  const align_options opt;
  cache.insert(view(ab), view(c), opt, align(view(ab), view(c), opt));
  alignment_result out;
  EXPECT_FALSE(cache.lookup(view(a), view(bc), opt, out));
  // Swapped query/subject is likewise a different key.
  EXPECT_FALSE(cache.lookup(view(c), view(ab), opt, out));
}

TEST(ServiceCacheUnit, ClearDropsEntriesKeepsCapacity) {
  response_cache cache(response_cache::config{32, 2});
  const auto q = random_codes(20, 7);
  const auto s = random_codes(20, 8);
  const align_options opt;
  cache.insert(view(q), view(s), opt, align(view(q), view(s), opt));
  const std::size_t cap = cache.capacity();
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.capacity(), cap);
  alignment_result out;
  EXPECT_FALSE(cache.lookup(view(q), view(s), opt, out));
}

TEST(ServiceCacheUnit, EvictionBoundsEntriesUnderPressure) {
  response_cache cache(response_cache::config{16, 1});
  const align_options opt;
  std::vector<std::vector<char_t>> qs, ss;
  for (int i = 0; i < 200; ++i) {
    qs.push_back(random_codes(24, 100 + i));
    ss.push_back(random_codes(24, 300 + i));
    cache.insert(view(qs.back()), view(ss.back()), opt,
                 align(view(qs.back()), view(ss.back()), opt));
  }
  const auto st = cache.stats();
  EXPECT_LE(st.entries, cache.capacity());
  EXPECT_GT(st.evictions, 0u);
  // Whatever still resides must be correct — eviction may drop entries,
  // never corrupt them.
  std::size_t resident = 0;
  for (int i = 0; i < 200; ++i) {
    alignment_result out;
    if (cache.lookup(view(qs[i]), view(ss[i]), opt, out)) {
      ++resident;
      expect_identical(out, align(view(qs[i]), view(ss[i]), opt));
    }
  }
  EXPECT_GT(resident, 0u);
  EXPECT_LE(resident, cache.capacity());
}

TEST(ServiceCacheUnit, ClockEvictionPrefersUnreferencedEntries) {
  // One shard, capacity == one probe window: entries that keep getting
  // hits (ref bit set) should survive a stream of single-use inserts
  // more often than untouched ones.  Pin one hot key, flood with cold
  // keys that map anywhere, and require the hot key to survive at least
  // the first eviction wave after its reference bit is set.
  response_cache cache(response_cache::config{8, 1});
  const align_options opt;
  const auto hot_q = random_codes(16, 900);
  const auto hot_s = random_codes(16, 901);
  const auto hot_r = align(view(hot_q), view(hot_s), opt);
  cache.insert(view(hot_q), view(hot_s), opt, hot_r);
  alignment_result out;
  ASSERT_TRUE(cache.lookup(view(hot_q), view(hot_s), opt, out));  // ref=1

  // Insert a handful of cold entries — fewer than two full windows, so
  // a second-chance clock cannot have evicted the referenced entry yet.
  for (int i = 0; i < 4; ++i) {
    const auto q = random_codes(16, 910 + i);
    const auto s = random_codes(16, 920 + i);
    cache.insert(view(q), view(s), opt, align(view(q), view(s), opt));
  }
  EXPECT_TRUE(cache.lookup(view(hot_q), view(hot_s), opt, out));
}

// -------------------------------------------------------------------
// Service-integrated differential tests
// -------------------------------------------------------------------

/// Cached results must be byte-identical to a fresh synchronous align()
/// on every route: submit each (pair, options) twice through a cached
/// service — the second submission is a cache hit — and compare both
/// against the synchronous oracle.
TEST(ServiceCache, HitsAreByteIdenticalAcrossRoutes) {
  config cfg;
  cfg.cache_capacity = 256;
  aligner svc(cfg);

  const auto opts = route_spanning_options();
  std::uint64_t expected_hits = 0;
  for (int p = 0; p < 6; ++p) {
    const auto q = random_codes(64 + 7 * p, 40 + p);
    const auto s = mutate(q, 70 + p);
    for (const auto& opt : opts) {
      const auto want = align(view(q), view(s), opt);
      auto miss = svc.submit(view(q), view(s), opt);
      expect_identical(miss.get(), want);  // cold: executed
      auto hit = svc.submit(view(q), view(s), opt);
      expect_identical(hit.get(), want);  // warm: served from cache
      ++expected_hits;
      ASSERT_EQ(svc.stats().cache_hits, expected_hits)
          << "second submission of an identical request must hit";
    }
  }
  const auto st = svc.stats();
  EXPECT_EQ(st.cache_hits, expected_hits);
  EXPECT_EQ(st.cache_misses, expected_hits);  // every pair missed once
  EXPECT_EQ(st.completed, 2 * expected_hits);
}

/// Randomized differential under a hit/miss mix: a pool of pairs
/// streamed repeatedly with varying options; every single result —
/// cached or computed — must match the synchronous oracle.
TEST(ServiceCache, RandomizedStreamMatchesOracle) {
  config cfg;
  cfg.cache_capacity = 64;
  cfg.max_batch = 8;
  aligner svc(cfg);

  const auto opts = route_spanning_options();
  constexpr int pool_size = 12;
  std::vector<std::vector<char_t>> qs, ss;
  for (int i = 0; i < pool_size; ++i) {
    qs.push_back(random_codes(50 + 3 * i, 500 + i));
    ss.push_back(mutate(qs.back(), 600 + i));
  }
  // Rounds 0/1 share one option pick per pair and rounds 2/3 another,
  // so half the stream re-requests a key that is already resident.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < pool_size; ++i) {
      const auto& opt = opts[(i + (round / 2)) % opts.size()];
      auto t = svc.submit(view(qs[i]), view(ss[i]), opt);
      expect_identical(t.get(), align(view(qs[i]), view(ss[i]), opt));
    }
  }
  const auto st = svc.stats();
  EXPECT_GT(st.cache_hits, 0u);
  EXPECT_EQ(st.completed, 4u * pool_size);
}

/// Equal sequences with different options must never share an entry —
/// the options fingerprint is part of the key.
TEST(ServiceCache, NoStaleHitsAcrossOptionSets) {
  config cfg;
  cfg.cache_capacity = 128;
  aligner svc(cfg);

  const auto q = random_codes(80, 77);
  const auto s = mutate(q, 78);

  align_options a;  // default global score-only
  align_options b = a;
  b.mismatch = -2;  // different scoring: different scores possible
  align_options c = a;
  c.kind = align_kind::local;
  align_options d = a;
  d.want_alignment = true;

  for (const auto& opt : {a, b, c, d}) {
    auto t = svc.submit(view(q), view(s), opt);
    expect_identical(t.get(), align(view(q), view(s), opt));
  }
  // Four distinct option sets on identical bytes: all four missed.
  EXPECT_EQ(svc.stats().cache_hits, 0u);
  EXPECT_EQ(svc.stats().cache_misses, 4u);

  // And each now hits its own entry with its own result.
  for (const auto& opt : {a, b, c, d}) {
    auto t = svc.submit(view(q), view(s), opt);
    expect_identical(t.get(), align(view(q), view(s), opt));
  }
  EXPECT_EQ(svc.stats().cache_hits, 4u);
}

/// Eviction pressure through the service: a cache far smaller than the
/// working set still returns only correct results, and evictions show
/// up in the service's stats.
TEST(ServiceCache, EvictionUnderCapacityPressureStaysCorrect) {
  config cfg;
  cfg.cache_capacity = 16;
  cfg.cache_shards = 1;
  aligner svc(cfg);

  const align_options opt;
  std::vector<std::vector<char_t>> qs, ss;
  for (int i = 0; i < 64; ++i) {
    qs.push_back(random_codes(40, 1000 + i));
    ss.push_back(random_codes(40, 2000 + i));
  }
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < qs.size(); ++i) {
      auto t = svc.submit(view(qs[i]), view(ss[i]), opt);
      expect_identical(t.get(), align(view(qs[i]), view(ss[i]), opt));
    }
  }
  const auto st = svc.stats();
  EXPECT_GT(st.cache_evictions, 0u);
  ASSERT_NE(svc.cache(), nullptr);
  EXPECT_LE(svc.cache()->stats().entries, svc.cache()->capacity());
}

/// submit_strings must hit the same entries as view submissions of the
/// same encoded bytes (the cache keys encoded bytes, not raw chars).
TEST(ServiceCache, StringSubmissionsShareEntriesWithViews) {
  config cfg;
  cfg.cache_capacity = 32;
  aligner svc(cfg);

  auto t1 = svc.submit_strings("ACGTACGTACGT", "ACGTTCGTACGT");
  const auto r1 = t1.get();
  auto t2 = svc.submit_strings("ACGTACGTACGT", "ACGTTCGTACGT");
  const auto r2 = t2.get();
  expect_identical(r2, r1);
  EXPECT_EQ(svc.stats().cache_hits, 1u);
}

/// A service without a cache behaves exactly as before: no counters
/// move, every request executes.
TEST(ServiceCache, DisabledCacheExecutesEverything) {
  aligner svc;  // default config: no cache
  EXPECT_EQ(svc.cache(), nullptr);
  const auto q = random_codes(32, 9);
  const auto s = random_codes(32, 10);
  for (int i = 0; i < 3; ++i) {
    auto t = svc.submit(view(q), view(s), {});
    (void)t.get();
  }
  const auto st = svc.stats();
  EXPECT_EQ(st.cache_hits, 0u);
  EXPECT_EQ(st.cache_misses, 0u);
  EXPECT_EQ(st.completed, 3u);
}

}  // namespace
}  // namespace anyseq::service
