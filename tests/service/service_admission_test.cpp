/// Admission tests for the serving tier: strict interactive-over-bulk
/// priority (a bulk flood must not starve interactive latency), the
/// linger preemption rule, per-tenant token-bucket quotas, per-class
/// telemetry, and the adaptive-linger controller.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "service/service.hpp"
#include "testutil.hpp"

namespace anyseq::service {
namespace {

using test::random_codes;
using test::view;
using namespace std::chrono_literals;

/// Poll the service until `pred(stats())` holds or ~2s elapse.
template <class Pred>
bool stats_become(const aligner& svc, Pred&& pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred(svc.stats())) return true;
    std::this_thread::sleep_for(1ms);
  }
  return false;
}

/// A bulk flood must not starve interactive traffic: with a deep bulk
/// backlog queued first, a later interactive request completes while
/// bulk work is still pending.  This is the structural guarantee behind
/// the bounded interactive p99 — interactive never waits for the bulk
/// queue, only for at most the batch in flight.
TEST(ServiceAdmission, InteractiveCompletesWhileBulkBacklogRemains) {
  config cfg;
  cfg.max_batch = 4;
  cfg.max_linger = 50us;
  cfg.queue_capacity = 1024;
  cfg.max_inflight_batches = 1;  // serialize: backlog must actually wait
  aligner svc(cfg);

  const auto q = random_codes(256, 11);
  const auto s = random_codes(256, 12);

  constexpr int n_bulk = 256;
  std::vector<ticket> bulk;
  bulk.reserve(n_bulk);
  submit_options bulk_so;
  bulk_so.cls = request_class::bulk;
  for (int i = 0; i < n_bulk; ++i)
    bulk.push_back(svc.submit(view(q), view(s), {}, bulk_so));

  submit_options ia_so;  // interactive is the default, but be explicit
  ia_so.cls = request_class::interactive;
  auto t = svc.submit(view(q), view(s), {}, ia_so);
  (void)t.get();

  // The moment the interactive request completed, the bulk backlog must
  // not be done — priority jumped the line past hundreds of requests.
  const auto st = svc.stats();
  EXPECT_LT(st.of(request_class::bulk).completed,
            static_cast<std::uint64_t>(n_bulk))
      << "interactive request waited for the whole bulk backlog";
  EXPECT_EQ(st.of(request_class::interactive).completed, 1u);

  for (auto& b : bulk) (void)b.get();
}

/// An interactive arrival cuts a lingering bulk batch short.  With a
/// very long linger, a lone bulk request would otherwise hold the
/// batcher for the full linger before anything else runs; the
/// interactive submission must flush it immediately.
TEST(ServiceAdmission, InteractiveArrivalCutsBulkLingerShort) {
  config cfg;
  cfg.max_batch = 8;
  cfg.max_linger = 500ms;  // absurd on purpose: the test must not wait it
  aligner svc(cfg);

  const auto q = random_codes(64, 13);
  const auto s = random_codes(64, 14);

  const auto t0 = std::chrono::steady_clock::now();
  submit_options bulk_so;
  bulk_so.cls = request_class::bulk;
  auto b = svc.submit(view(q), view(s), {}, bulk_so);
  std::this_thread::sleep_for(5ms);  // let the bulk batch start lingering

  // Eight interactive requests: they preempt the bulk linger, then fill
  // a full batch themselves (max_batch == 8), so nothing here waits for
  // any linger to expire.
  std::vector<ticket> ia;
  for (int i = 0; i < 8; ++i) ia.push_back(svc.submit(view(q), view(s), {}));
  for (auto& t : ia) (void)t.get();
  (void)b.get();
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  // Generous bound: well under the 500ms linger, far above execution
  // time.  Without the preemption flush, the bulk batch alone holds the
  // batcher for 500ms and this blows past the bound.
  EXPECT_LT(elapsed, 250ms);
}

/// Token buckets: a tenant gets its burst, then quota_error — under the
/// *block* policy, proving quota exhaustion rejects instead of blocking.
/// Other tenants are unaffected.
TEST(ServiceAdmission, TenantQuotaEnforcedPerTenant) {
  config cfg;
  cfg.policy = backpressure::block;
  cfg.tenant_rate = 1e-6;  // effectively no refill within the test
  cfg.tenant_burst = 5;
  cfg.max_tenants = 4;
  aligner svc(cfg);

  const auto q = random_codes(32, 15);
  const auto s = random_codes(32, 16);

  std::vector<ticket> ok;
  submit_options so;
  so.tenant = 1;
  for (int i = 0; i < 5; ++i)
    ok.push_back(svc.submit(view(q), view(s), {}, so));
  for (int i = 0; i < 3; ++i)
    EXPECT_THROW((void)svc.submit(view(q), view(s), {}, so), quota_error);

  // Tenant 2 has its own untouched bucket.
  so.tenant = 2;
  for (int i = 0; i < 5; ++i)
    ok.push_back(svc.submit(view(q), view(s), {}, so));

  // Out-of-range tenant ids are a caller bug, not a quota event.
  so.tenant = 99;
  EXPECT_THROW((void)svc.submit(view(q), view(s), {}, so),
               invalid_argument_error);

  const auto st = svc.stats();
  EXPECT_EQ(st.quota_rejected, 3u);
  EXPECT_EQ(st.of(request_class::interactive).quota_rejected, 3u);
  EXPECT_EQ(st.accepted, 10u);
  for (auto& t : ok) (void)t.get();
}

/// Tokens refill at tenant_rate: after draining the burst, waiting long
/// enough earns another admission.
TEST(ServiceAdmission, TenantQuotaRefillsOverTime) {
  config cfg;
  cfg.tenant_rate = 50.0;  // one token every 20ms
  cfg.tenant_burst = 1;
  aligner svc(cfg);

  const auto q = random_codes(32, 17);
  const auto s = random_codes(32, 18);

  auto t1 = svc.submit(view(q), view(s), {});
  (void)t1.get();
  // Bucket drained; an immediate submit may or may not squeak through on
  // elapsed time, so drain until rejection...
  bool rejected = false;
  for (int i = 0; i < 3 && !rejected; ++i) {
    try {
      auto t = svc.submit(view(q), view(s), {});
      (void)t.get();
    } catch (const quota_error&) {
      rejected = true;
    }
  }
  EXPECT_TRUE(rejected);
  // ...then wait a full refill period and expect admission again.
  std::this_thread::sleep_for(40ms);
  auto t2 = svc.submit(view(q), view(s), {});
  (void)t2.get();
}

/// Cache hits are not charged against the tenant's bucket: quotas meter
/// executed work, and hits cost none.
TEST(ServiceAdmission, CacheHitsNotChargedAgainstQuota) {
  config cfg;
  cfg.cache_capacity = 32;
  cfg.tenant_rate = 1e-6;
  cfg.tenant_burst = 2;
  aligner svc(cfg);

  const auto q1 = random_codes(40, 19);
  const auto s1 = random_codes(40, 20);
  const auto q2 = random_codes(40, 21);
  const auto s2 = random_codes(40, 22);
  const auto q3 = random_codes(40, 23);
  const auto s3 = random_codes(40, 24);

  auto t = svc.submit(view(q1), view(s1), {});  // token 1 (miss)
  (void)t.get();
  for (int i = 0; i < 5; ++i) {
    auto h = svc.submit(view(q1), view(s1), {});  // hits: free
    (void)h.get();
  }
  auto t2 = svc.submit(view(q2), view(s2), {});  // token 2 (miss)
  (void)t2.get();
  EXPECT_THROW((void)svc.submit(view(q3), view(s3), {}), quota_error);

  const auto st = svc.stats();
  EXPECT_EQ(st.cache_hits, 5u);
  EXPECT_EQ(st.quota_rejected, 1u);
}

/// Per-class counters resolve the traffic mix, and the aggregate fields
/// remain the exact sum of the class slices.
TEST(ServiceAdmission, PerClassCountersSumToAggregate) {
  aligner svc;
  const auto q = random_codes(48, 25);
  const auto s = random_codes(48, 26);

  submit_options bulk_so;
  bulk_so.cls = request_class::bulk;
  std::vector<ticket> ts;
  for (int i = 0; i < 3; ++i) ts.push_back(svc.submit(view(q), view(s), {}));
  for (int i = 0; i < 5; ++i)
    ts.push_back(svc.submit(view(q), view(s), {}, bulk_so));
  for (auto& t : ts) (void)t.get();

  const auto st = svc.stats();
  EXPECT_EQ(st.of(request_class::interactive).accepted, 3u);
  EXPECT_EQ(st.of(request_class::bulk).accepted, 5u);
  EXPECT_EQ(st.of(request_class::interactive).completed, 3u);
  EXPECT_EQ(st.of(request_class::bulk).completed, 5u);
  EXPECT_EQ(st.accepted, 8u);
  EXPECT_EQ(st.completed, 8u);
  EXPECT_GT(st.of(request_class::interactive).latency_samples, 0u);
  EXPECT_GT(st.of(request_class::bulk).latency_samples, 0u);
  EXPECT_EQ(st.latency_samples,
            st.of(request_class::interactive).latency_samples +
                st.of(request_class::bulk).latency_samples);
}

/// The adaptive controller shrinks the effective linger while the
/// interactive p99 exceeds its target.  An unreachable target forces
/// monotone shrinkage toward min_linger.
TEST(ServiceAdmission, AdaptiveLingerShrinksUnderTailPressure) {
  config cfg;
  cfg.max_batch = 4;
  cfg.max_linger = 5ms;
  cfg.adaptive_linger = true;
  cfg.min_linger = 50us;
  cfg.interactive_p99_target = 1us;  // unreachable: always shrink
  aligner svc(cfg);

  EXPECT_EQ(svc.effective_linger(), std::chrono::nanoseconds(5ms));

  const auto q = random_codes(64, 27);
  const auto s = random_codes(64, 28);
  // Keep traffic flowing so the controller ticks (it runs per dispatch,
  // rate-limited internally).
  for (int i = 0; i < 300; ++i) {
    auto t = svc.submit(view(q), view(s), {});
    (void)t.get();
    if (svc.effective_linger() <= std::chrono::nanoseconds(1ms)) break;
  }
  EXPECT_LT(svc.effective_linger(), std::chrono::nanoseconds(5ms));
  EXPECT_GE(svc.effective_linger(),
            std::chrono::nanoseconds(std::chrono::microseconds(50)));
}

/// Adaptive-linger configuration is validated at construction.
TEST(ServiceAdmission, AdaptiveConfigValidation) {
  config bad;
  bad.adaptive_linger = true;
  bad.min_linger = 1ms;
  bad.max_linger = 100us;  // min > max
  EXPECT_THROW(aligner{bad}, invalid_argument_error);

  config bad2;
  bad2.adaptive_linger = true;
  bad2.interactive_p99_target = 0us;
  EXPECT_THROW(aligner{bad2}, invalid_argument_error);

  config bad3;
  bad3.tenant_rate = -1.0;
  EXPECT_THROW(aligner{bad3}, invalid_argument_error);
}

/// shed_oldest sheds within the submitting class only: a bulk flood can
/// never shed queued interactive requests.
TEST(ServiceAdmission, ShedOldestStaysWithinClass) {
  config cfg;
  cfg.max_batch = 1;
  cfg.queue_capacity = 2;
  cfg.max_outstanding = 64;
  cfg.max_inflight_batches = 1;
  cfg.policy = backpressure::shed_oldest;
  cfg.max_linger = 0us;
  aligner svc(cfg);

  const auto q = random_codes(512, 29);
  const auto s = random_codes(512, 30);

  // Fill both class queues, then overflow the bulk queue: the shed
  // victims must all be bulk.
  std::vector<ticket> ia, bulk;
  submit_options bulk_so;
  bulk_so.cls = request_class::bulk;
  for (int i = 0; i < 2; ++i) ia.push_back(svc.submit(view(q), view(s), {}));
  for (int i = 0; i < 8; ++i)
    bulk.push_back(svc.submit(view(q), view(s), {}, bulk_so));

  const auto st = svc.stats();
  EXPECT_EQ(st.of(request_class::interactive).shed, 0u);
  EXPECT_GE(st.of(request_class::bulk).shed, 1u);

  int ia_ok = 0;
  for (auto& t : ia) {
    try {
      (void)t.get();
      ++ia_ok;
    } catch (const shed_error&) {
      ADD_FAILURE() << "interactive request shed by bulk overflow";
    }
  }
  EXPECT_EQ(ia_ok, 2);
  for (auto& t : bulk) {
    try {
      (void)t.get();
    } catch (const shed_error&) {
      // expected for some
    }
  }
}

}  // namespace
}  // namespace anyseq::service
