/// Functional tests for the asynchronous alignment service: result
/// identity with synchronous align(), ticket semantics, coalescing,
/// every backpressure policy, shutdown in both modes, and telemetry.

#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <thread>

#include "testutil.hpp"

namespace anyseq::service {
namespace {

using test::random_codes;
using test::view;
using namespace std::chrono_literals;

/// Field-by-field identity with a synchronous align() result.
void expect_identical(const alignment_result& got,
                      const alignment_result& want) {
  EXPECT_EQ(got.score, want.score);
  EXPECT_EQ(got.q_begin, want.q_begin);
  EXPECT_EQ(got.q_end, want.q_end);
  EXPECT_EQ(got.s_begin, want.s_begin);
  EXPECT_EQ(got.s_end, want.s_end);
  EXPECT_EQ(got.q_aligned, want.q_aligned);
  EXPECT_EQ(got.s_aligned, want.s_aligned);
  EXPECT_EQ(got.cigar, want.cigar);
  EXPECT_EQ(got.has_alignment, want.has_alignment);
  EXPECT_EQ(got.cells, want.cells);
  ASSERT_NE(got.variant, nullptr);
  ASSERT_NE(want.variant, nullptr);
  EXPECT_STREQ(got.variant, want.variant);
}

/// Poll the service until `pred(stats())` holds or ~2s elapse.
template <class Pred>
bool stats_become(const aligner& svc, Pred&& pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred(svc.stats())) return true;
    std::this_thread::sleep_for(1ms);
  }
  return false;
}

TEST(Service, SingleRequestMatchesSynchronousAlign) {
  const auto q = random_codes(48, 1);
  const auto s = random_codes(40, 2);
  for (const bool traceback : {false, true}) {
    align_options opt;
    opt.want_alignment = traceback;
    aligner svc;
    auto t = svc.submit(view(q), view(s), opt);
    EXPECT_TRUE(t.valid());
    const auto got = t.get();
    EXPECT_FALSE(t.valid());  // consumed
    expect_identical(got, align(view(q), view(s), opt));
  }
}

TEST(Service, SubmitStringsCopiesInputs) {
  aligner svc;
  ticket t;
  {
    // Temporaries die before get(): the service must have copied them.
    std::string q = "ACGTACGTAC";
    std::string s = "ACGTTCGTAC";
    t = svc.submit_strings(q, s);
  }
  const auto got = t.get();
  EXPECT_EQ(got.score, align_strings("ACGTACGTAC", "ACGTTCGTAC").score);
}

TEST(Service, CompatibleRequestsCoalesceIntoOneBatch) {
  // A long linger lets the batcher absorb everything the producer
  // submits; 32 compatible requests must execute as one batch.
  config cfg;
  cfg.max_batch = 32;
  cfg.max_linger = 200ms;
  aligner svc(cfg);
  std::vector<std::vector<char_t>> qs, ss;
  for (int i = 0; i < 32; ++i) {
    qs.push_back(random_codes(64, 100 + i));
    ss.push_back(random_codes(64, 200 + i));
  }
  std::vector<ticket> tickets;
  for (int i = 0; i < 32; ++i)
    tickets.push_back(svc.submit(view(qs[i]), view(ss[i])));
  for (int i = 0; i < 32; ++i)
    expect_identical(tickets[i].get(), align(view(qs[i]), view(ss[i])));
  const auto snap = svc.stats();
  EXPECT_EQ(snap.accepted, 32u);
  EXPECT_EQ(snap.completed, 32u);
  EXPECT_EQ(snap.batches, 1u);
  EXPECT_DOUBLE_EQ(snap.mean_batch_occupancy, 32.0);
}

TEST(Service, OptionBoundaryFlushesBatch) {
  // Alternating incompatible options force flushes: batches > 1 even
  // within one linger window.
  config cfg;
  cfg.max_batch = 64;
  cfg.max_linger = 100ms;
  aligner svc(cfg);
  const auto q = random_codes(32, 3);
  const auto s = random_codes(32, 4);
  align_options a;         // match 2
  align_options b;
  b.match = 3;             // incompatible with a
  std::vector<ticket> tickets;
  for (int i = 0; i < 8; ++i)
    tickets.push_back(svc.submit(view(q), view(s), i % 2 == 0 ? a : b));
  for (int i = 0; i < 8; ++i) {
    const auto got = tickets[i].get();
    expect_identical(got, align(view(q), view(s), i % 2 == 0 ? a : b));
  }
  EXPECT_GE(svc.stats().batches, 2u);
}

TEST(Service, MixedSoloAndBatchRoutesAllMatchSync) {
  aligner svc;
  const auto q = random_codes(40, 5);
  const auto s = random_codes(44, 6);
  std::vector<align_options> opts(4);
  opts[0].kind = align_kind::global;             // batch_score
  opts[1].want_alignment = true;                 // batch_traceback
  opts[2].kind = align_kind::local;              // solo
  opts[3].kind = align_kind::semiglobal;         // solo
  std::vector<ticket> tickets;
  for (const auto& o : opts) tickets.push_back(svc.submit(view(q), view(s), o));
  for (std::size_t i = 0; i < opts.size(); ++i)
    expect_identical(tickets[i].get(), align(view(q), view(s), opts[i]));
}

TEST(Service, EmptySequencesMatchSync) {
  aligner svc;
  const auto s = random_codes(16, 7);
  const std::vector<char_t> empty;
  align_options opt;
  opt.want_alignment = true;
  auto t = svc.submit(view(empty), view(s), opt);
  expect_identical(t.get(), align(view(empty), view(s), opt));
}

TEST(Service, InvalidOptionsThrowSynchronously) {
  aligner svc;
  const auto q = random_codes(8, 8);
  align_options opt;
  opt.gap_extend = 1;  // must be <= 0
  EXPECT_THROW((void)svc.submit(view(q), view(q), opt),
               invalid_argument_error);
  EXPECT_EQ(svc.stats().accepted, 0u);
}

TEST(Service, ExecutionErrorPropagatesThroughTicket) {
  // Extension traceback beyond full_matrix_cells is rejected by the
  // dispatcher at execution time; the ticket must deliver that error.
  aligner svc;
  const auto q = random_codes(16, 9);
  align_options opt;
  opt.kind = align_kind::extension;
  opt.want_alignment = true;
  opt.full_matrix_cells = 4;
  auto t = svc.submit(view(q), view(q), opt);
  EXPECT_THROW((void)t.get(), invalid_argument_error);
  const auto snap = svc.stats();
  EXPECT_EQ(snap.failed, 1u);
  EXPECT_EQ(snap.completed, 0u);
}

TEST(Service, TicketSemantics) {
  ticket empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW((void)empty.get(), invalid_argument_error);
  EXPECT_THROW((void)empty.ready(), invalid_argument_error);

  aligner svc;
  const auto q = random_codes(8, 10);
  auto t = svc.submit(view(q), view(q));
  ticket moved = std::move(t);
  EXPECT_FALSE(t.valid());
  EXPECT_TRUE(moved.valid());
  (void)moved.get();
  EXPECT_FALSE(moved.valid());
}

TEST(Service, ReadyBecomesTrueWithoutGet) {
  aligner svc;
  const auto q = random_codes(8, 11);
  auto t = svc.submit(view(q), view(q));
  for (int i = 0; i < 2000 && !t.ready(); ++i)
    std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(t.ready());
  (void)t.get();
}

TEST(Service, AbandonedTicketsLeakNoSlots) {
  config cfg;
  aligner svc(cfg);
  const auto q = random_codes(8, 12);
  for (int i = 0; i < 16; ++i) {
    auto t = svc.submit(view(q), view(q));
    // dropped without get()
  }
  svc.shutdown(true);
  const auto snap = svc.stats();
  EXPECT_EQ(snap.outstanding_tickets, 0u);
  EXPECT_EQ(snap.completed, 16u);
}

TEST(Service, BlockPolicyEventuallyAdmitsEverything) {
  // Producer runs far ahead of the consumer, so it must block on slot
  // exhaustion (max_outstanding 4) and resume as tickets retire.
  config cfg;
  cfg.queue_capacity = 2;
  cfg.max_outstanding = 4;
  cfg.policy = backpressure::block;
  aligner svc(cfg);
  const auto q = random_codes(32, 13);
  std::mutex m;
  std::deque<ticket> handed_off;
  std::thread producer([&] {
    for (int i = 0; i < 24; ++i) {
      auto t = svc.submit(view(q), view(q));
      std::lock_guard lock(m);
      handed_off.push_back(std::move(t));
    }
  });
  int got = 0;
  while (got < 24) {
    ticket t;
    {
      std::lock_guard lock(m);
      if (!handed_off.empty()) {
        t = std::move(handed_off.front());
        handed_off.pop_front();
      }
    }
    if (t.valid()) {
      (void)t.get();
      ++got;
    } else {
      std::this_thread::sleep_for(1ms);
    }
  }
  producer.join();
  const auto snap = svc.stats();
  EXPECT_EQ(snap.accepted, 24u);
  EXPECT_EQ(snap.rejected, 0u);
  EXPECT_EQ(snap.outstanding_tickets, 0u);
}

/// Fixture that wedges the service: one slow request occupies the only
/// workspace, a second batch blocks waiting for it, so everything else
/// piles up in the admission queue — deterministic backpressure.
class ServiceBackpressure : public ::testing::Test {
 protected:
  static config wedged_config(backpressure policy) {
    config cfg;
    cfg.max_batch = 1;
    cfg.max_linger = 0us;
    cfg.queue_capacity = 2;
    cfg.max_outstanding = 64;
    cfg.max_inflight_batches = 1;
    cfg.policy = policy;
    return cfg;
  }

  /// Submit the wedge (a large, slow alignment) and wait until it is
  /// executing and the next batch is parked on the workspace gate.
  ticket wedge(aligner& svc) {
    slow_q = random_codes(12000, 14);
    slow_s = random_codes(12000, 15);
    auto t = svc.submit(view(slow_q), view(slow_s));
    EXPECT_TRUE(stats_become(
        svc, [](const service_stats& s) { return s.in_flight_batches == 1; }));
    return t;
  }

  std::vector<char_t> slow_q, slow_s, small = random_codes(8, 16);
};

TEST_F(ServiceBackpressure, RejectPolicyThrowsWhenQueueIsFull) {
  aligner svc(wedged_config(backpressure::reject));
  auto slow = wedge(svc);
  // One more request gets popped into the parked second batch; then the
  // queue (capacity 2) fills, and further submissions must reject.
  std::vector<ticket> tickets;
  int rejected = 0;
  for (int i = 0; i < 16; ++i) {
    try {
      tickets.push_back(svc.submit(view(small), view(small)));
    } catch (const queue_full_error&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(svc.stats().rejected, static_cast<std::uint64_t>(rejected));
  (void)slow.get();
  for (auto& t : tickets) (void)t.get();
}

TEST_F(ServiceBackpressure, ShedOldestDropsQueuedRequests) {
  aligner svc(wedged_config(backpressure::shed_oldest));
  auto slow = wedge(svc);
  std::vector<ticket> tickets;
  for (int i = 0; i < 16; ++i)
    tickets.push_back(svc.submit(view(small), view(small)));
  (void)slow.get();
  int ok = 0, shed = 0;
  for (auto& t : tickets) {
    try {
      (void)t.get();
      ++ok;
    } catch (const shed_error&) {
      ++shed;
    }
  }
  EXPECT_GT(shed, 0);
  EXPECT_GT(ok, 0);
  EXPECT_EQ(ok + shed, 16);
  const auto snap = svc.stats();
  EXPECT_EQ(snap.shed, static_cast<std::uint64_t>(shed));
  EXPECT_EQ(snap.outstanding_tickets, 0u);
}

TEST_F(ServiceBackpressure, NoDrainShutdownFailsQueuedRequests) {
  aligner svc(wedged_config(backpressure::block));
  auto slow = wedge(svc);
  // One request is absorbed into the parked batch; two sit in the queue.
  std::vector<ticket> tickets;
  for (int i = 0; i < 3; ++i)
    tickets.push_back(svc.submit(view(small), view(small)));
  EXPECT_TRUE(stats_become(
      svc, [](const service_stats& s) { return s.queue_depth == 2; }));
  svc.shutdown(/*drain=*/false);
  int ok = 0, failed = 0;
  (void)slow.get();  // the wedge itself always completes
  for (auto& t : tickets) {
    try {
      (void)t.get();
      ++ok;
    } catch (const shutdown_error&) {
      ++failed;
    }
  }
  EXPECT_EQ(failed, 2);
  EXPECT_EQ(ok, 1);
  EXPECT_THROW((void)svc.submit(view(small), view(small)), shutdown_error);
}

TEST(Service, DrainShutdownCompletesEverythingQueued) {
  config cfg;
  cfg.max_linger = 50ms;  // requests are still queued when we shut down
  aligner svc(cfg);
  const auto q = random_codes(24, 17);
  std::vector<ticket> tickets;
  for (int i = 0; i < 20; ++i)
    tickets.push_back(svc.submit(view(q), view(q)));
  svc.shutdown(/*drain=*/true);
  for (auto& t : tickets) expect_identical(t.get(), align(view(q), view(q)));
  const auto snap = svc.stats();
  EXPECT_EQ(snap.completed, 20u);
  EXPECT_EQ(snap.queue_depth, 0u);
  EXPECT_EQ(snap.in_flight_batches, 0u);
  EXPECT_EQ(snap.outstanding_tickets, 0u);
  EXPECT_THROW((void)svc.submit(view(q), view(q)), shutdown_error);
}

TEST(Service, StatsReportLatencyPercentiles) {
  aligner svc;
  const auto q = random_codes(64, 18);
  std::vector<ticket> tickets;
  for (int i = 0; i < 8; ++i) tickets.push_back(svc.submit(view(q), view(q)));
  for (auto& t : tickets) (void)t.get();
  const auto snap = svc.stats();
  EXPECT_EQ(snap.latency_samples, 8u);
  EXPECT_GT(snap.p50_latency_ns, 0u);
  EXPECT_GE(snap.p99_latency_ns, snap.p50_latency_ns);
}

TEST(Service, BadConfigurationThrows) {
  config cfg;
  cfg.max_batch = 0;
  EXPECT_THROW(aligner{cfg}, invalid_argument_error);
  cfg = config{};
  cfg.queue_capacity = 0;
  EXPECT_THROW(aligner{cfg}, invalid_argument_error);
  cfg = config{};
  cfg.max_outstanding = 1;  // < queue_capacity
  EXPECT_THROW(aligner{cfg}, invalid_argument_error);
}

TEST(Service, ValidationErrorRejectsBeforeAnyCapacityIsConsumed) {
  aligner svc;
  const auto q = random_codes(8, 21);
  align_options bad;
  bad.gap_open = 3;  // must be <= 0
  EXPECT_THROW((void)svc.submit(view(q), view(q), bad), validation_error);
  const auto snap = svc.stats();
  EXPECT_EQ(snap.accepted, 0u);
  EXPECT_EQ(snap.queue_depth, 0u);
  EXPECT_EQ(snap.outstanding_tickets, 0u);
  // The service is unharmed: a valid submission still works.
  expect_identical(svc.submit(view(q), view(q)).get(),
                   align(view(q), view(q)));
}

TEST_F(ServiceBackpressure, TicketWaitForTimesOutThenCompletes) {
  aligner svc(wedged_config(backpressure::block));
  auto slow = wedge(svc);
  EXPECT_FALSE(slow.wait_for(1ms));  // the wedge is nowhere near done
  EXPECT_TRUE(slow.valid());         // a timed-out wait consumes nothing
  EXPECT_TRUE(slow.wait_for(60s));   // converts a hang into a failure
  EXPECT_TRUE(slow.ready());
  (void)slow.get();

  ticket empty;
  EXPECT_THROW((void)empty.wait_for(1ms), invalid_argument_error);
}

TEST(Service, WaitUntilHonorsAbsoluteDeadline) {
  aligner svc;
  const auto q = random_codes(16, 22);
  auto t = svc.submit(view(q), view(q));
  EXPECT_TRUE(t.wait_until(std::chrono::steady_clock::now() + 60s));
  expect_identical(t.get(), align(view(q), view(q)));
}

TEST(Service, ExpiredDeadlineAtSubmitFailsTicketImmediately) {
  aligner svc;
  const auto q = random_codes(16, 23);
  submit_options so;
  so.deadline = std::chrono::steady_clock::now() - 1ms;
  auto t = svc.submit(view(q), view(q), {}, so);
  EXPECT_TRUE(t.ready());  // never queued: failed on the spot
  EXPECT_THROW((void)t.get(), deadline_error);
  const auto snap = svc.stats();
  EXPECT_EQ(snap.deadline_expired, 1u);
  EXPECT_EQ(snap.of(request_class::interactive).deadline_expired, 1u);
  EXPECT_EQ(snap.accepted, 1u);
  EXPECT_EQ(snap.failed, 1u);
  EXPECT_EQ(snap.queue_depth, 0u);
}

TEST_F(ServiceBackpressure, QueuedRequestsShedWhenDeadlinePasses) {
  // The wedge holds the only exec unit; deadline-carrying requests
  // queue behind it and expire before the batcher can collect them.
  aligner svc(wedged_config(backpressure::block));
  auto slow = wedge(svc);
  submit_options so;
  so.cls = request_class::bulk;  // separate ring: not absorbed early
  so.deadline = std::chrono::steady_clock::now() + 20ms;
  ticket t1 = svc.submit(view(small), view(small), {}, so);
  ticket t2 = svc.submit(view(small), view(small), {}, so);
  (void)slow.get();
  EXPECT_THROW((void)t1.get(), deadline_error);
  EXPECT_THROW((void)t2.get(), deadline_error);
  const auto snap = svc.stats();
  EXPECT_EQ(snap.deadline_expired, 2u);
  EXPECT_EQ(snap.of(request_class::bulk).deadline_expired, 2u);
  EXPECT_EQ(snap.outstanding_tickets, 0u);
}

TEST(Service, LingerNeverPassesTheEarliestDeadline) {
  // A 10s linger would starve this request far past its deadline; the
  // deadline-aware batcher must flush early enough for it to execute.
  config cfg;
  cfg.max_batch = 64;
  cfg.max_linger = 10s;
  // Generous headroom: the flush must land well before the deadline even
  // on a loaded CI machine, or the dispatch shed point eats the request.
  cfg.deadline_headroom = std::chrono::milliseconds(100);
  aligner svc(cfg);
  const auto q = random_codes(32, 24);
  submit_options so;
  so.deadline = std::chrono::steady_clock::now() + 250ms;
  auto t = svc.submit(view(q), view(q), {}, so);
  ASSERT_TRUE(t.wait_for(5s));  // bounded: a hang fails, not wedges
  expect_identical(t.get(), align(view(q), view(q)));
  EXPECT_EQ(svc.stats().deadline_expired, 0u);
}

TEST_F(ServiceBackpressure, NoDrainShutdownFailsPendingTicketsPromptly) {
  // Satellite: shutdown-with-inflight — the wedge is mid-execution when
  // shutdown lands; queued tickets must fail by the time it returns,
  // and the inflight request still delivers.
  aligner svc(wedged_config(backpressure::block));
  auto slow = wedge(svc);
  std::vector<ticket> tickets;
  for (int i = 0; i < 3; ++i)
    tickets.push_back(svc.submit(view(small), view(small)));
  EXPECT_TRUE(stats_become(
      svc, [](const service_stats& s) { return s.queue_depth == 2; }));
  svc.shutdown(/*drain=*/false);
  // Queued requests were failed synchronously inside shutdown: their
  // tickets are ready the moment it returns, no grace period needed.
  int ready_now = 0;
  for (auto& t : tickets) ready_now += t.ready() ? 1 : 0;
  EXPECT_GE(ready_now, 2);
  ASSERT_TRUE(slow.wait_for(60s));
  (void)slow.get();
  int ok = 0, failed = 0;
  for (auto& t : tickets) {
    ASSERT_TRUE(t.wait_for(60s));
    try {
      (void)t.get();
      ++ok;
    } catch (const shutdown_error&) {
      ++failed;
    }
  }
  EXPECT_EQ(failed, 2);
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(svc.stats().outstanding_tickets, 0u);
}

TEST(Service, AbandonUnderLoadReclaimsEverySlot) {
  // Satellite: abandon-under-load — tickets dropped while their
  // requests are queued or executing must all recycle their slots.
  config cfg;
  cfg.max_batch = 4;
  cfg.max_outstanding = 32;
  cfg.queue_capacity = 32;
  aligner svc(cfg);
  const auto q = random_codes(64, 25);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 32; ++i) {
      auto t = svc.submit(view(q), view(q));
      // dropped without get(): abandoned mid-flight
    }
    // All 32 slots must come back — a leak would wedge this submit
    // forever under the block policy (bounded by the watchdog-free
    // stats poll below instead).
    EXPECT_TRUE(stats_become(svc, [&](const service_stats& s) {
      return s.outstanding_tickets == 0;
    }));
  }
  svc.shutdown(true);
  const auto snap = svc.stats();
  EXPECT_EQ(snap.outstanding_tickets, 0u);
  EXPECT_EQ(snap.completed, 128u);
}

TEST(Service, RepeatOffendersAreQuarantinedAtSubmit) {
  // A request that deterministically fails in isolation (extension
  // traceback beyond full_matrix_cells) is quarantined after
  // `quarantine_threshold` offenses and refused before admission.
  config cfg;
  cfg.quarantine_capacity = 8;
  cfg.quarantine_threshold = 2;
  aligner svc(cfg);
  const auto q = random_codes(16, 26);
  align_options opt;
  opt.kind = align_kind::extension;
  opt.want_alignment = true;
  opt.full_matrix_cells = 4;
  for (int i = 0; i < 2; ++i) {
    auto t = svc.submit(view(q), view(q), opt);
    EXPECT_THROW((void)t.get(), invalid_argument_error);
  }
  EXPECT_THROW((void)svc.submit(view(q), view(q), opt), quarantine_error);
  const auto snap = svc.stats();
  EXPECT_EQ(snap.quarantined, 1u);
  EXPECT_EQ(snap.of(request_class::interactive).quarantined, 1u);
  // Different requests are unaffected.
  const auto other = random_codes(16, 27);
  expect_identical(svc.submit(view(other), view(other)).get(),
                   align(view(other), view(other)));
}

TEST(Service, GlobalServiceFreeFunctions) {
  const auto q = random_codes(16, 19);
  auto t = submit(view(q), view(q));
  EXPECT_EQ(t.get().score, align(view(q), view(q)).score);
  auto t2 = submit_strings("ACGT", "ACGT");
  EXPECT_EQ(t2.get().score, align_strings("ACGT", "ACGT").score);
  EXPECT_GE(stats().completed, 2u);
}

}  // namespace
}  // namespace anyseq::service
