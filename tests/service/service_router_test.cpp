/// Tests for the sharded service router: byte-identity across shards,
/// the shared response cache serving hits across shard boundaries,
/// affinity + spill routing, and merged telemetry (counters summed,
/// percentiles ranked over the pooled reservoir samples).

#include "service/router.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "testutil.hpp"

namespace anyseq::service {
namespace {

using test::mutate;
using test::random_codes;
using test::view;
using namespace std::chrono_literals;

void expect_identical(const alignment_result& got,
                      const alignment_result& want) {
  EXPECT_EQ(got.score, want.score);
  EXPECT_EQ(got.q_begin, want.q_begin);
  EXPECT_EQ(got.q_end, want.q_end);
  EXPECT_EQ(got.s_begin, want.s_begin);
  EXPECT_EQ(got.s_end, want.s_end);
  EXPECT_EQ(got.q_aligned, want.q_aligned);
  EXPECT_EQ(got.s_aligned, want.s_aligned);
  EXPECT_EQ(got.cigar, want.cigar);
  EXPECT_EQ(got.has_alignment, want.has_alignment);
  EXPECT_EQ(got.cells, want.cells);
}

/// Every result from a multi-shard group is byte-identical to the
/// synchronous oracle, across score-only, traceback, and local routes.
TEST(ServiceRouter, ResultsByteIdenticalAcrossShards) {
  service_group::config cfg;
  cfg.shards = 4;
  cfg.cache_capacity = 128;
  service_group group(cfg);
  ASSERT_EQ(group.shard_count(), 4u);

  std::vector<align_options> opts(3);
  opts[1].want_alignment = true;
  opts[2].kind = align_kind::local;

  std::vector<ticket> ts;
  std::vector<alignment_result> want;
  std::vector<std::vector<char_t>> qs, ss;
  for (int i = 0; i < 24; ++i) {
    qs.push_back(random_codes(40 + 5 * i, 3000 + i));
    ss.push_back(mutate(qs.back(), 4000 + i));
    const auto& opt = opts[i % opts.size()];
    want.push_back(align(view(qs.back()), view(ss.back()), opt));
    ts.push_back(group.submit(view(qs.back()), view(ss.back()), opt));
  }
  for (std::size_t i = 0; i < ts.size(); ++i)
    expect_identical(ts[i].get(), want[i]);

  const auto st = group.stats();
  EXPECT_EQ(st.accepted, 24u);
  EXPECT_EQ(st.completed, 24u);
  // 24 distinct queries over 4 shards: affinity hashing spreads them.
  std::size_t shards_used = 0;
  for (std::size_t i = 0; i < group.shard_count(); ++i)
    shards_used += group.shard(i).stats().accepted > 0 ? 1 : 0;
  EXPECT_GE(shards_used, 2u);
}

/// The cache is shared: a result computed by one shard serves a hit
/// submitted directly to another shard.
TEST(ServiceRouter, SharedCacheServesHitsAcrossShards) {
  service_group::config cfg;
  cfg.shards = 2;
  cfg.cache_capacity = 64;
  service_group group(cfg);

  const auto q = random_codes(60, 31);
  const auto s = random_codes(60, 32);

  auto miss = group.shard(0).submit(view(q), view(s), {});
  const auto want = miss.get();
  auto hit = group.shard(1).submit(view(q), view(s), {});
  expect_identical(hit.get(), want);

  const auto st = group.stats();
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.cache_misses, 1u);
  EXPECT_EQ(group.shard(1).stats().cache_hits, 1u);
}

/// Requests for one hot query spill off their home shard once its queue
/// runs deep: with spill_margin 0 both shards end up doing work, while
/// an effectively-infinite margin pins everything to the home shard.
TEST(ServiceRouter, SpillBalancesHotQueryAndAffinityPinsIt) {
  const auto q = random_codes(256, 33);  // one hot query: one home shard
  std::vector<std::vector<char_t>> subjects;
  for (int i = 0; i < 64; ++i) subjects.push_back(random_codes(256, 40 + i));

  const auto run = [&](std::size_t margin) {
    service_group::config cfg;
    cfg.shards = 2;
    cfg.cache_capacity = 0;  // distinct subjects anyway; keep all misses
    cfg.spill_margin = margin;
    cfg.shard.max_batch = 4;
    cfg.shard.max_inflight_batches = 1;
    cfg.shard.max_linger = 2ms;  // let depth build on the home shard
    service_group group(cfg);
    std::vector<ticket> ts;
    for (const auto& s : subjects)
      ts.push_back(group.submit(view(q), view(s), {}));
    for (auto& t : ts) (void)t.get();
    std::vector<std::uint64_t> per_shard;
    for (std::size_t i = 0; i < group.shard_count(); ++i)
      per_shard.push_back(group.shard(i).stats().accepted);
    return per_shard;
  };

  // Margin 0: any imbalance spills.  The hot query floods its home
  // shard far faster than one batcher drains it, so the other shard
  // must receive spilled work.
  const auto spilled = run(0);
  EXPECT_GT(spilled[0], 0u);
  EXPECT_GT(spilled[1], 0u);

  // Effectively infinite margin: pure affinity, one shard owns the key.
  const auto pinned = run(1u << 20);
  EXPECT_TRUE((pinned[0] == 64 && pinned[1] == 0) ||
              (pinned[0] == 0 && pinned[1] == 64));
}

/// Merged percentiles are the nearest-rank of the pooled samples — not
/// any combination of per-shard percentiles.  Verified exactly on the
/// helper the router uses, with shard-like partitions whose per-shard
/// p99s would give a very different (wrong) answer.
TEST(ServiceRouter, MergedPercentilesRankThePooledSamples) {
  // "Shard A": 99 fast samples.  "Shard B": 99 slow samples.
  std::vector<std::uint64_t> a, b;
  for (std::uint64_t i = 1; i <= 99; ++i) {
    a.push_back(i);            // 1..99
    b.push_back(1000 + i);     // 1001..1099
  }
  // Pooled: 198 samples.  nearest-rank p50 = 99th smallest -> 99;
  // p99 = ceil(0.99*198) = 197th smallest -> 1098.
  std::vector<std::uint64_t> merged = a;
  merged.insert(merged.end(), b.begin(), b.end());
  const auto p = nearest_rank_percentiles(merged);
  EXPECT_EQ(p.samples, 198u);
  EXPECT_EQ(p.p50, 99u);
  EXPECT_EQ(p.p99, 1098u);
  // Averaging the per-shard p99s (99 and 1099 -> 599) or summing them
  // (1198) would both be far off the true pooled tail.
}

/// group.stats() pools the real reservoirs: sample counts add up across
/// shards and the merged percentiles are bracketed by the samples.
TEST(ServiceRouter, GroupStatsMergeShardReservoirs) {
  service_group::config cfg;
  cfg.shards = 2;
  cfg.cache_capacity = 0;
  service_group group(cfg);

  std::vector<ticket> ts;
  std::vector<std::vector<char_t>> qs, ss;
  for (int i = 0; i < 16; ++i) {
    qs.push_back(random_codes(48, 5000 + i));
    ss.push_back(random_codes(48, 6000 + i));
    ts.push_back(group.submit(view(qs.back()), view(ss.back()), {}));
  }
  for (auto& t : ts) (void)t.get();

  const auto st = group.stats();
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < group.shard_count(); ++i)
    sum += group.shard(i).stats().latency_samples;
  EXPECT_EQ(st.latency_samples, sum);
  EXPECT_EQ(st.latency_samples, 16u);
  EXPECT_GT(st.p99_latency_ns, 0u);
  EXPECT_LE(st.p50_latency_ns, st.p99_latency_ns);
}

/// Priority classes and quotas pass through the router to the shards.
TEST(ServiceRouter, ClassesAndStringSubmissionsRouteThrough) {
  service_group::config cfg;
  cfg.shards = 2;
  cfg.cache_capacity = 32;
  service_group group(cfg);

  submit_options bulk_so;
  bulk_so.cls = request_class::bulk;
  auto b = group.submit_strings("ACGTACGTACGTACGT", "ACGTTCGTACGTACGT", {},
                                bulk_so);
  const auto rb = b.get();  // completed: its result is now cached
  auto i = group.submit_strings("ACGTACGTACGTACGT", "ACGTTCGTACGTACGT", {});
  const auto ri = i.get();
  expect_identical(ri, rb);

  const auto st = group.stats();
  EXPECT_EQ(st.of(request_class::bulk).accepted, 1u);
  EXPECT_EQ(st.of(request_class::interactive).accepted, 1u);
  EXPECT_EQ(st.cache_hits, 1u);  // identical pair: second one hit
}

/// Shutdown is idempotent and rejects later submissions, like a single
/// service.
TEST(ServiceRouter, ShutdownDrainsAndRejects) {
  service_group::config cfg;
  cfg.shards = 2;
  service_group group(cfg);

  const auto q = random_codes(32, 35);
  const auto s = random_codes(32, 36);
  auto t = group.submit(view(q), view(s), {});
  group.shutdown(true);
  (void)t.get();  // drained work still completes
  group.shutdown(true);  // idempotent
  EXPECT_THROW((void)group.submit(view(q), view(s), {}), shutdown_error);
}

}  // namespace
}  // namespace anyseq::service
