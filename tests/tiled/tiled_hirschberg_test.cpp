#include "tiled/tiled_hirschberg.hpp"

#include <gtest/gtest.h>

#include "core/full_engine.hpp"
#include "testutil.hpp"

namespace anyseq::tiled {
namespace {

using test::view;

template <int Lanes, class Gap>
void check(index_t n, const Gap& gap, std::uint64_t seed, tiled_config cfg,
           index_t base_cells) {
  auto q = test::random_codes(n, seed);
  auto s = test::mutate(q, seed + 1, 0.08, 0.04);
  const simple_scoring sc{2, -1};
  auto want = rolling_score<align_kind::global>(view(q), view(s), gap, sc);
  auto got = tiled_hirschberg_align<Lanes>(view(q), view(s), gap, sc, cfg,
                                           base_cells);
  ASSERT_EQ(got.score, want.score);
  const score_t re = rescore_alignment(
      got.q_aligned, got.s_aligned,
      [](char a, char b) { return a == b ? 2 : -1; }, gap);
  EXPECT_EQ(re, got.score);
  // Inputs reproduced when stripping gaps.
  std::string qp;
  for (char c : got.q_aligned)
    if (c != '-') qp.push_back(c);
  EXPECT_EQ(qp.size(), static_cast<std::size_t>(n));
}

TEST(TiledHirschberg, ScalarMultithreadLinear) {
  check<1>(800, linear_gap{-1}, 1, {64, 64, 4, true}, 1 << 10);
}

TEST(TiledHirschberg, ScalarMultithreadAffine) {
  check<1>(700, affine_gap{-2, -1}, 2, {64, 64, 3, true}, 1 << 10);
}

TEST(TiledHirschberg, Simd16Affine) {
  check<16>(900, affine_gap{-2, -1}, 3, {32, 32, 2, true}, 1 << 10);
}

TEST(TiledHirschberg, Simd16StaticSchedule) {
  check<16>(600, affine_gap{-3, -1}, 4, {32, 32, 2, false}, 1 << 10);
}

TEST(TiledHirschberg, TinyBaseCellsStressesRecursion) {
  check<1>(300, affine_gap{-2, -1}, 5, {32, 32, 2, true}, 1);
}

TEST(TiledHirschberg, CellsStayLinearSpaceBounded) {
  auto q = test::random_codes(1000, 6);
  auto s = test::mutate(q, 7);
  const simple_scoring sc{2, -1};
  auto r = tiled_hirschberg_align<16>(view(q), view(s), affine_gap{-2, -1},
                                      sc, {64, 64, 2, true}, 1 << 12);
  const auto nm = static_cast<std::uint64_t>(q.size()) * s.size();
  EXPECT_LE(r.cells, 2 * nm + q.size() + s.size());
}

}  // namespace
}  // namespace anyseq::tiled
