#include "tiled/tiled_engine.hpp"

#include <gtest/gtest.h>

#include "core/rolling.hpp"
#include "testutil.hpp"

namespace anyseq::tiled {
namespace {

using test::view;

struct engine_param {
  int threads;
  bool dynamic;
  index_t tile;
};

void PrintTo(const engine_param& p, std::ostream* os) {
  *os << (p.dynamic ? "dynamic" : "static") << " t" << p.threads << " tile"
      << p.tile;
}

class TiledEngineGrid : public ::testing::TestWithParam<engine_param> {};

template <align_kind K, class Gap, int Lanes>
void check_scores(const engine_param& p, const Gap& gap, std::uint64_t seed,
                  index_t n = 300, index_t m = 333) {
  auto q = test::random_codes(n, seed);
  auto s = test::mutate(q, seed + 1);
  s.resize(std::min<std::size_t>(s.size(), static_cast<std::size_t>(m)));
  const simple_scoring sc{2, -1};
  tiled_config cfg{p.tile, p.tile, p.threads, p.dynamic};
  tiled_engine<K, Gap, simple_scoring, Lanes> eng(gap, sc, cfg);
  const auto got = eng.score(view(q), view(s));
  const auto want = rolling_score<K>(view(q), view(s), gap, sc);
  ASSERT_EQ(got.score, want.score)
      << to_string(K) << " lanes " << Lanes << " seed " << seed;
}

TEST_P(TiledEngineGrid, GlobalLinearScalar) {
  check_scores<align_kind::global, linear_gap, 1>(GetParam(), linear_gap{-1},
                                                  1);
}

TEST_P(TiledEngineGrid, GlobalAffineScalar) {
  check_scores<align_kind::global, affine_gap, 1>(GetParam(),
                                                  affine_gap{-2, -1}, 2);
}

TEST_P(TiledEngineGrid, LocalAffineScalar) {
  check_scores<align_kind::local, affine_gap, 1>(GetParam(),
                                                 affine_gap{-3, -1}, 3);
}

TEST_P(TiledEngineGrid, SemiglobalLinearScalar) {
  check_scores<align_kind::semiglobal, linear_gap, 1>(GetParam(),
                                                      linear_gap{-1}, 4);
}

TEST_P(TiledEngineGrid, GlobalLinearSimd16) {
  check_scores<align_kind::global, linear_gap, 16>(GetParam(),
                                                   linear_gap{-1}, 5);
}

TEST_P(TiledEngineGrid, GlobalAffineSimd16) {
  check_scores<align_kind::global, affine_gap, 16>(GetParam(),
                                                   affine_gap{-2, -1}, 6);
}

TEST_P(TiledEngineGrid, LocalLinearSimd16) {
  check_scores<align_kind::local, linear_gap, 16>(GetParam(), linear_gap{-2},
                                                  7);
}

TEST_P(TiledEngineGrid, SemiglobalAffineSimd16) {
  check_scores<align_kind::semiglobal, affine_gap, 16>(GetParam(),
                                                       affine_gap{-2, -1}, 8);
}

TEST_P(TiledEngineGrid, GlobalAffineSimd32) {
  check_scores<align_kind::global, affine_gap, 32>(GetParam(),
                                                   affine_gap{-2, -1}, 9);
}

INSTANTIATE_TEST_SUITE_P(
    SchedulersThreadsTiles, TiledEngineGrid,
    ::testing::Values(engine_param{1, true, 64}, engine_param{1, false, 64},
                      engine_param{4, true, 64}, engine_param{4, false, 64},
                      engine_param{2, true, 37}, engine_param{3, true, 128},
                      engine_param{8, true, 16}),
    [](const auto& info) {
      return std::string(info.param.dynamic ? "dyn" : "stat") + "_t" +
             std::to_string(info.param.threads) + "_s" +
             std::to_string(info.param.tile);
    });

TEST(TiledEngine, EmptyInputs) {
  const simple_scoring sc{2, -1};
  tiled_engine<align_kind::global, linear_gap, simple_scoring, 1> eng(
      linear_gap{-1}, sc);
  std::vector<char_t> q, s = test::random_codes(10, 1);
  EXPECT_EQ(eng.score(view(q), view(s)).score, -10);
  EXPECT_EQ(eng.score(view(s), view(q)).score, -10);
  EXPECT_EQ(eng.score(view(q), view(q)).score, 0);
}

TEST(TiledEngine, RejectsBadConfig) {
  const simple_scoring sc{2, -1};
  EXPECT_THROW((tiled_engine<align_kind::global, linear_gap, simple_scoring,
                             1>(linear_gap{-1}, sc, {0, 64, 1, true})),
               invalid_argument_error);
  EXPECT_THROW((tiled_engine<align_kind::global, linear_gap, simple_scoring,
                             1>(linear_gap{-1}, sc, {64, 64, 0, true})),
               invalid_argument_error);
  // 16-bit range violation: huge tiles x large scores.
  EXPECT_THROW((tiled_engine<align_kind::global, linear_gap, simple_scoring,
                             16>(linear_gap{-100}, simple_scoring{100, -100},
                                 {512, 512, 1, true})),
               invalid_argument_error);
  // Positive gap penalties are rejected.
  EXPECT_THROW((tiled_engine<align_kind::global, linear_gap, simple_scoring,
                             1>(linear_gap{1}, sc)),
               invalid_argument_error);
}

TEST(TiledEngine, LastRowMatchesSerialPass) {
  auto q = test::random_codes(150, 31);
  auto s = test::random_codes(170, 32);
  const simple_scoring sc{2, -1};
  const affine_gap gap{-2, -1};
  for (score_t tb : {gap.open(), score_t{0}}) {
    std::vector<score_t> hh_ref(171), ee_ref(171), hh(171), ee(171);
    nw_last_row(view(q), view(s), gap, sc, tb, std::span(hh_ref),
                std::span(ee_ref));
    tiled_engine<align_kind::global, affine_gap, simple_scoring, 16> eng(
        gap, sc, {32, 32, 3, true});
    eng.last_row(view(q), view(s), tb, std::span(hh), std::span(ee));
    EXPECT_EQ(hh, hh_ref) << "tb " << tb;
    EXPECT_EQ(ee, ee_ref) << "tb " << tb;
  }
}

TEST(TiledEngine, SimdBlocksActuallyForm) {
  // One big alignment with many tiles per diagonal must produce blocks.
  auto q = test::random_codes(64 * 20, 41);
  auto s = test::random_codes(64 * 20, 42);
  const simple_scoring sc{2, -1};
  tiled_engine<align_kind::global, linear_gap, simple_scoring, 16> eng(
      linear_gap{-1}, sc, {64, 64, 2, true});
  (void)eng.score(view(q), view(s));
  EXPECT_GT(eng.last_stats().blocks, 0u);
}

TEST(TiledEngine, LocalEndPositionIsAnOptimalCell) {
  // SIMD and scalar may break score ties differently, but the reported
  // end cell must carry the optimal score (verified via a scalar rerun).
  auto q = test::random_codes(500, 51);
  auto s = test::mutate(q, 52);
  const simple_scoring sc{2, -1};
  tiled_engine<align_kind::local, affine_gap, simple_scoring, 16> eng(
      affine_gap{-2, -1}, sc, {48, 48, 2, true});
  const auto got = eng.score(view(q), view(s));
  const auto want =
      rolling_score<align_kind::local>(view(q), view(s), affine_gap{-2, -1},
                                       sc);
  EXPECT_EQ(got.score, want.score);
  // Rerun restricted to the reported end cell's prefix: its local best
  // must equal the global best (the end cell is genuinely optimal).
  const auto prefix = rolling_score<align_kind::local>(
      view(q).sub(0, got.end_i), view(s).sub(0, got.end_j),
      affine_gap{-2, -1}, sc);
  EXPECT_EQ(prefix.score, want.score);
}

}  // namespace
}  // namespace anyseq::tiled
