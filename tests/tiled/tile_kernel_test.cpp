#include "tiled/tile_kernel.hpp"

#include <gtest/gtest.h>

#include "core/full_engine.hpp"
#include "testutil.hpp"

namespace anyseq::tiled {
namespace {

using test::view;

/// Drive the scalar tile kernel over a whole grid serially (row-major
/// covers dependencies) and compare the lattice against the full engine.
template <align_kind K, class Gap>
void grid_matches_full(index_t n, index_t m, index_t th, index_t tw,
                       const Gap& gap, std::uint64_t seed) {
  auto q = test::random_codes(n, seed);
  auto s = test::random_codes(m, seed + 99);
  const simple_scoring sc{2, -1};

  tile_geometry geom(n, m, th, tw);
  border_lattice lat(geom, Gap::kind == gap_kind::affine);
  for (index_t j = 0; j <= m; ++j)
    lat.h_row(0)[j] = init_h_row0<K>(j, gap);
  for (index_t i = 0; i <= n; ++i)
    lat.h_col(0)[i] = init_h_col0<K>(i, gap);

  std::vector<score_t> h(tw + 1), e(tw + 1);
  tile_best best;
  for (index_t ty = 0; ty < geom.tiles_y; ++ty)
    for (index_t tx = 0; tx < geom.tiles_x; ++tx)
      best.merge(relax_tile_scalar<K>(view(q), view(s), lat, ty, tx, gap, sc,
                                      h.data(), e.data()));

  full_engine<K, Gap, simple_scoring> ref(gap, sc);
  auto r = ref.align(view(q), view(s), false);
  auto hm = ref.h_matrix(n, m);

  // Bottom lattice row equals the full engine's last DP row.
  for (index_t j = 0; j <= m; ++j)
    ASSERT_EQ(lat.h_row(geom.tiles_y)[j], hm.read(n, j)) << "col " << j;
  // Right lattice column equals the last DP column.
  for (index_t i = 0; i <= n; ++i)
    if (i > 0)  // the (0, m) corner slot of h_col is never written
      ASSERT_EQ(lat.h_col(geom.tiles_x)[i], hm.read(i, m)) << "row " << i;

  if constexpr (K != align_kind::global) {
    score_t want = r.score;
    score_t got = best.score;
    if constexpr (K == align_kind::local) got = std::max<score_t>(got, 0);
    if constexpr (K == align_kind::semiglobal) {
      got = std::max(got, hm.read(0, m));
      got = std::max(got, hm.read(n, 0));
    }
    if constexpr (K == align_kind::extension) got = std::max<score_t>(got, 0);
    EXPECT_EQ(got, want);
  }
}

TEST(TileKernel, GlobalLinearVariousTilings) {
  grid_matches_full<align_kind::global>(30, 40, 8, 8, linear_gap{-1}, 1);
  grid_matches_full<align_kind::global>(33, 41, 8, 16, linear_gap{-1}, 2);
  grid_matches_full<align_kind::global>(17, 17, 32, 32, linear_gap{-2}, 3);
  grid_matches_full<align_kind::global>(64, 64, 16, 16, linear_gap{-1}, 4);
}

TEST(TileKernel, GlobalAffineVariousTilings) {
  grid_matches_full<align_kind::global>(30, 40, 8, 8, affine_gap{-3, -1}, 5);
  grid_matches_full<align_kind::global>(45, 23, 16, 8, affine_gap{-2, -1}, 6);
  grid_matches_full<align_kind::global>(29, 31, 10, 10, affine_gap{-10, -2},
                                        7);
}

TEST(TileKernel, LocalTracksBest) {
  grid_matches_full<align_kind::local>(40, 40, 8, 8, linear_gap{-2}, 8);
  grid_matches_full<align_kind::local>(37, 53, 16, 8, affine_gap{-4, -1}, 9);
}

TEST(TileKernel, SemiglobalTracksBorder) {
  grid_matches_full<align_kind::semiglobal>(24, 48, 8, 8, linear_gap{-1}, 10);
  grid_matches_full<align_kind::semiglobal>(48, 24, 8, 8, affine_gap{-2, -1},
                                            11);
}

TEST(TileKernel, ExtensionTracksBest) {
  grid_matches_full<align_kind::extension>(30, 30, 8, 8, affine_gap{-2, -1},
                                           12);
}

TEST(TileKernel, TileLargerThanMatrix) {
  grid_matches_full<align_kind::global>(5, 7, 64, 64, affine_gap{-2, -1}, 13);
}

TEST(TileKernel, SingleCellTiles) {
  grid_matches_full<align_kind::global>(9, 9, 1, 1, linear_gap{-1}, 14);
}

TEST(TileGeometry, ClippingAndFullness) {
  tile_geometry g(10, 13, 4, 5);
  EXPECT_EQ(g.tiles_y, 3);
  EXPECT_EQ(g.tiles_x, 3);
  EXPECT_TRUE(g.full(0, 0));
  EXPECT_FALSE(g.full(2, 0));  // rows 8..10: height 2
  EXPECT_FALSE(g.full(0, 2));  // cols 10..13: width 3
  EXPECT_EQ(g.y1(2), 10);
  EXPECT_EQ(g.x1(2), 13);
}

TEST(BorderLattice, AffineAllocatesPlanes) {
  tile_geometry g(100, 100, 10, 10);
  border_lattice lin(g, false), aff(g, true);
  EXPECT_FALSE(lin.affine());
  EXPECT_TRUE(aff.affine());
  EXPECT_GT(aff.bytes(), lin.bytes());
}

}  // namespace
}  // namespace anyseq::tiled
