#include "tiled/simd_block.hpp"

#include <gtest/gtest.h>

#include "core/full_engine.hpp"
#include "testutil.hpp"

namespace anyseq::tiled {
namespace {

using test::view;

/// Run one grid twice — scalar tiles vs SIMD blocks of W anti-diagonal
/// tiles — and require identical lattices.
template <align_kind K, class Gap, int W>
void block_equals_scalar(index_t n, index_t m, index_t tile,
                         const Gap& gap, std::uint64_t seed) {
  auto q = test::random_codes(n, seed);
  auto s = test::random_codes(m, seed + 7);
  const simple_scoring sc{2, -1};
  const bool affine = Gap::kind == gap_kind::affine;

  tile_geometry geom(n, m, tile, tile);
  ASSERT_GE(std::min(geom.tiles_y, geom.tiles_x), static_cast<index_t>(W))
      << "test needs a diagonal with W independent full tiles";

  auto init = [&](border_lattice& lat) {
    for (index_t j = 0; j <= m; ++j)
      lat.h_row(0)[j] = init_h_row0<K>(j, gap);
    for (index_t i = 0; i <= n; ++i)
      lat.h_col(0)[i] = init_h_col0<K>(i, gap);
  };

  // Scalar reference lattice.
  border_lattice ref(geom, affine);
  init(ref);
  std::vector<score_t> h(tile + 1), e(tile + 1);
  tile_best ref_best;
  for (index_t ty = 0; ty < geom.tiles_y; ++ty)
    for (index_t tx = 0; tx < geom.tiles_x; ++tx)
      ref_best.merge(relax_tile_scalar<K>(view(q), view(s), ref, ty, tx, gap,
                                          sc, h.data(), e.data()));

  // SIMD lattice: sweep anti-diagonals; where a diagonal has >= W full
  // tiles, process them as one block, the rest scalar.
  border_lattice lat(geom, affine);
  init(lat);
  workspace scratch_ws;
  block_scratch<W> scratch;
  scratch.bind(scratch_ws, tile);
  tile_best simd_best;
  for (index_t d = 0; d < geom.tiles_y + geom.tiles_x - 1; ++d) {
    std::vector<parallel::tile_coord> diag;
    const index_t ty_lo = d < geom.tiles_x ? 0 : d - geom.tiles_x + 1;
    const index_t ty_hi = d < geom.tiles_y ? d : geom.tiles_y - 1;
    for (index_t ty = ty_lo; ty <= ty_hi; ++ty)
      diag.push_back({0, static_cast<std::int32_t>(ty),
                      static_cast<std::int32_t>(d - ty)});
    std::size_t i = 0;
    while (i < diag.size()) {
      bool can_block = i + W <= diag.size();
      for (std::size_t k = i; can_block && k < i + W; ++k)
        can_block = geom.full(diag[k].ty, diag[k].tx);
      if (can_block) {
        simd_best.merge(relax_tile_block<K, Gap, simple_scoring, W>(
            view(q), view(s), lat, diag.data() + i, gap, sc, scratch));
        i += W;
      } else {
        simd_best.merge(relax_tile_scalar<K>(view(q), view(s), lat,
                                             diag[i].ty, diag[i].tx, gap, sc,
                                             h.data(), e.data()));
        ++i;
      }
    }
  }

  for (index_t j = 0; j <= m; ++j)
    ASSERT_EQ(lat.h_row(geom.tiles_y)[j], ref.h_row(geom.tiles_y)[j])
        << "bottom col " << j;
  for (index_t i = 1; i <= n; ++i)
    ASSERT_EQ(lat.h_col(geom.tiles_x)[i], ref.h_col(geom.tiles_x)[i])
        << "right row " << i;
  if constexpr (K != align_kind::global)
    EXPECT_EQ(simd_best.score, ref_best.score);
}

TEST(SimdBlock, GlobalLinear4Lanes) {
  block_equals_scalar<align_kind::global, linear_gap, 8>(
      8 * 16, 8 * 16, 16, linear_gap{-1}, 1);
}

TEST(SimdBlock, GlobalAffine8Lanes) {
  block_equals_scalar<align_kind::global, affine_gap, 8>(
      8 * 16, 8 * 16, 16, affine_gap{-2, -1}, 2);
}

TEST(SimdBlock, GlobalAffine16Lanes) {
  block_equals_scalar<align_kind::global, affine_gap, 16>(
      16 * 16 + 5, 16 * 16 + 3, 16, affine_gap{-3, -1}, 3);
}

TEST(SimdBlock, LocalAffine16Lanes) {
  block_equals_scalar<align_kind::local, affine_gap, 16>(
      16 * 16, 16 * 16, 16, affine_gap{-2, -1}, 4);
}

TEST(SimdBlock, Semiglobal16Lanes) {
  block_equals_scalar<align_kind::semiglobal, linear_gap, 16>(
      16 * 16, 16 * 16, 16, linear_gap{-1}, 5);
}

TEST(SimdBlock, Wide32Lanes) {
  block_equals_scalar<align_kind::global, affine_gap, 32>(
      32 * 8, 32 * 8, 8, affine_gap{-2, -1}, 6);
}

TEST(SimdBlock, RaggedEdgesFallBackCleanly) {
  // Sizes chosen so edge tiles are clipped; blocks form only inside.
  block_equals_scalar<align_kind::global, affine_gap, 8>(
      8 * 16 + 9, 8 * 16 + 11, 16, affine_gap{-2, -1}, 7);
}

TEST(SimdBlockRebase, RoundTripsAbsoluteScores) {
  using detail::debase16;
  using detail::rebase16;
  EXPECT_EQ(debase16(rebase16(1000, 900), 900), 1000);
  EXPECT_EQ(debase16(rebase16(-50, 100), 100), -50);
  // The -inf sentinel survives both directions.
  EXPECT_EQ(rebase16(neg_inf(), 0), neg_inf16());
  EXPECT_EQ(debase16(neg_inf16(), 12345), neg_inf());
}

}  // namespace
}  // namespace anyseq::tiled
