#include "tiled/batch_engine.hpp"

#include <gtest/gtest.h>

#include "bio/random.hpp"
#include "bio/read_sim.hpp"
#include "core/rolling.hpp"
#include "testutil.hpp"

namespace anyseq::tiled {
namespace {

using test::view;

std::vector<std::vector<char_t>> make_reads(std::size_t count, index_t len,
                                            std::uint64_t seed) {
  std::vector<std::vector<char_t>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(test::random_codes(static_cast<std::size_t>(len),
                                     seed * 1000 + i));
  return out;
}

template <align_kind K, class Gap, int Lanes>
void batch_matches_scalar(std::size_t pairs_n, index_t len, const Gap& gap,
                          int threads, std::uint64_t seed) {
  auto qs = make_reads(pairs_n, len, seed);
  auto ss = make_reads(pairs_n, len, seed + 500);
  std::vector<pair_view> pairs;
  for (std::size_t i = 0; i < pairs_n; ++i)
    pairs.push_back({view(qs[i]), view(ss[i])});
  const simple_scoring sc{2, -1};
  batch_engine<K, Gap, simple_scoring, Lanes> eng(gap, sc, {threads});
  auto got = eng.scores(pairs);
  ASSERT_EQ(got.size(), pairs_n);
  for (std::size_t i = 0; i < pairs_n; ++i) {
    const auto want = rolling_score<K>(pairs[i].q, pairs[i].s, gap, sc);
    ASSERT_EQ(got[i], want.score) << "pair " << i << " " << to_string(K);
  }
}

TEST(BatchEngine, GlobalLinearUniform) {
  batch_matches_scalar<align_kind::global, linear_gap, 16>(
      64, 80, linear_gap{-1}, 2, 1);
}

TEST(BatchEngine, GlobalAffineUniform) {
  batch_matches_scalar<align_kind::global, affine_gap, 16>(
      64, 80, affine_gap{-2, -1}, 2, 2);
}

TEST(BatchEngine, LocalAffineUniform) {
  batch_matches_scalar<align_kind::local, affine_gap, 16>(
      48, 70, affine_gap{-3, -1}, 3, 3);
}

TEST(BatchEngine, SemiglobalLinearUniform) {
  batch_matches_scalar<align_kind::semiglobal, linear_gap, 16>(
      48, 60, linear_gap{-1}, 2, 4);
}

TEST(BatchEngine, Wide32Lanes) {
  batch_matches_scalar<align_kind::global, affine_gap, 32>(
      96, 64, affine_gap{-2, -1}, 2, 5);
}

TEST(BatchEngine, NonMultipleOfLanesGetsRemainder) {
  batch_matches_scalar<align_kind::global, linear_gap, 16>(
      37, 50, linear_gap{-1}, 2, 6);
}

TEST(BatchEngine, RaggedLengthsFallBackToScalar) {
  std::vector<std::vector<char_t>> qs, ss;
  std::vector<pair_view> pairs;
  for (std::size_t i = 0; i < 40; ++i) {
    qs.push_back(test::random_codes(30 + i % 7, i));
    ss.push_back(test::random_codes(35 + i % 5, i + 99));
  }
  for (std::size_t i = 0; i < 40; ++i)
    pairs.push_back({view(qs[i]), view(ss[i])});
  const simple_scoring sc{2, -1};
  batch_engine<align_kind::global, affine_gap, simple_scoring, 16> eng(
      affine_gap{-2, -1}, sc, {2});
  auto got = eng.scores(pairs);
  for (std::size_t i = 0; i < 40; ++i) {
    const auto want = rolling_score<align_kind::global>(
        pairs[i].q, pairs[i].s, affine_gap{-2, -1}, sc);
    ASSERT_EQ(got[i], want.score) << i;
  }
  EXPECT_GT(eng.last_stats().scalar_pairs, 0u);
}

TEST(BatchEngine, StatsCountSimdPath) {
  auto qs = make_reads(32, 50, 7);
  std::vector<pair_view> pairs;
  for (std::size_t i = 0; i < 32; ++i)
    pairs.push_back({view(qs[i]), view(qs[i])});
  const simple_scoring sc{2, -1};
  batch_engine<align_kind::global, linear_gap, simple_scoring, 16> eng(
      linear_gap{-1}, sc, {1});
  auto got = eng.scores(pairs);
  EXPECT_EQ(eng.last_stats().simd_pairs, 32u);
  for (score_t v : got) EXPECT_EQ(v, 100);  // self-alignment, all matches
}

TEST(BatchEngine, AlignAllProducesValidTracebacks) {
  bio::genome_params gp;
  gp.length = 20000;
  gp.seed = 9;
  auto ref = bio::random_genome("ref", gp);
  auto rp = bio::simulate_read_pairs(ref, 20, {});
  std::vector<pair_view> pairs;
  for (const auto& p : rp) pairs.push_back({p.first.view(), p.second.view()});
  const simple_scoring sc{2, -1};
  batch_engine<align_kind::global, affine_gap, simple_scoring, 16> eng(
      affine_gap{-2, -1}, sc, {2});
  auto results = eng.align_all(pairs);
  auto scores = eng.scores(pairs);
  ASSERT_EQ(results.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(results[i].has_alignment);
    EXPECT_EQ(results[i].score, scores[i]) << i;
    const score_t re = rescore_alignment(
        results[i].q_aligned, results[i].s_aligned,
        [](char a, char b) { return a == b ? 2 : -1; }, affine_gap{-2, -1});
    EXPECT_EQ(re, results[i].score) << i;
  }
}

TEST(BatchEngine, EmptyBatch) {
  const simple_scoring sc{2, -1};
  batch_engine<align_kind::global, linear_gap, simple_scoring, 16> eng(
      linear_gap{-1}, sc, {2});
  EXPECT_TRUE(eng.scores({}).empty());
  EXPECT_TRUE(eng.align_all({}).empty());
}

}  // namespace
}  // namespace anyseq::tiled
