/// Alignment-server scenario: bulk client threads stream distinct
/// requests while an interactive client fires repeated hot queries at
/// the sharded, cache-fronted service group (the ROADMAP's "heavy
/// traffic from millions of users" shape, scaled to one process).
/// Requests are routed by query hash affinity across N shards, spill to
/// the least-loaded shard under imbalance, and identical requests are
/// served from the shared response cache without touching a batcher.
/// The final telemetry shows what each layer bought: throughput vs a
/// synchronous one-call-per-request loop, per-class p50/p99 latency,
/// batch occupancy, and cache hit/miss/eviction counts.
///
///   $ ./alignment_server [n_requests] [n_clients] [n_shards]
///                                                (default 4000, 4, 2)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "anyseq/anyseq.hpp"
#include "bio/random.hpp"
#include "bio/read_sim.hpp"
#include "service/router.hpp"

int main(int argc, char** argv) {
  const std::size_t n_requests =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;
  const int n_clients = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::size_t n_shards =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2;
  if (n_requests == 0 || n_clients < 1 || n_shards < 1) {
    std::fprintf(stderr,
                 "usage: alignment_server [n_requests >= 1] [n_clients >= 1] "
                 "[n_shards >= 1]\n");
    return 2;
  }

  // Simulated traffic: 150 bp read pairs against a random genome.
  anyseq::bio::genome_params gp;
  gp.length = 1 << 20;
  gp.seed = 7;
  const auto ref = anyseq::bio::random_genome("chr_surrogate", gp);
  const auto data = anyseq::bio::simulate_read_pairs(ref, n_requests, {});

  anyseq::align_options opt;
  opt.kind = anyseq::align_kind::global;
  opt.gap_open = -2;
  opt.gap_extend = -1;
  opt.threads = 1;  // the service parallelizes across batches instead

  using clock = std::chrono::steady_clock;

  // Baseline: one synchronous align() per request.
  const auto t0 = clock::now();
  std::atomic<long long> sync_sum{0};
  for (const auto& p : data)
    sync_sum += anyseq::align(p.first.view(), p.second.view(), opt).score;
  const double sync_s =
      std::chrono::duration<double>(clock::now() - t0).count();

  // Server: an N-shard group with a shared response cache.  Bulk
  // clients stream the distinct workload; one interactive client fires
  // repeated hot queries that resolve from the cache after first touch.
  anyseq::service::service_group::config cfg;
  cfg.shards = n_shards;
  cfg.cache_capacity = 4096;
  cfg.shard.max_batch = 64;
  cfg.shard.max_linger = std::chrono::microseconds(300);
  cfg.shard.queue_capacity = 1024;
  anyseq::service::service_group group(cfg);

  const std::size_t n_hot = std::min<std::size_t>(n_requests, 256);

  const auto t1 = clock::now();
  std::atomic<long long> svc_sum{0};
  std::vector<std::thread> clients;
  const std::size_t per_client =
      (n_requests + static_cast<std::size_t>(n_clients) - 1) /
      static_cast<std::size_t>(n_clients);
  for (int c = 0; c < n_clients; ++c) {
    clients.emplace_back([&, c] {
      const std::size_t lo = static_cast<std::size_t>(c) * per_client;
      const std::size_t hi = std::min(n_requests, lo + per_client);
      anyseq::service::submit_options so;
      so.cls = anyseq::service::request_class::bulk;
      long long local = 0;
      std::vector<anyseq::service::ticket> window;
      window.reserve(64);
      std::size_t head = 0;
      for (std::size_t i = lo; i < hi; ++i) {
        window.push_back(group.submit(data[i].first.view(),
                                      data[i].second.view(), opt, so));
        if (window.size() - head >= 64) local += window[head++].get().score;
      }
      for (std::size_t i = head; i < window.size(); ++i)
        local += window[i].get().score;
      svc_sum += local;
    });
  }
  // Interactive client: hot queries repeat, so after the bulk tier
  // computes them once the cache serves every repeat.
  std::atomic<long long> hot_sum{0};
  std::thread interactive([&] {
    long long local = 0;
    for (std::size_t rep = 0; rep < 4; ++rep)
      for (std::size_t i = 0; i < n_hot; ++i) {
        auto t = group.submit(data[i].first.view(), data[i].second.view(),
                              opt);  // default class: interactive
        local += t.get().score;
      }
    hot_sum += local;
  });
  for (auto& t : clients) t.join();
  interactive.join();
  const double svc_s =
      std::chrono::duration<double>(clock::now() - t1).count();
  group.shutdown(true);

  // Correctness: bulk checksum matches the synchronous loop; the hot
  // queries are 4 repeats of the first n_hot pairs.
  long long hot_want = 0;
  for (std::size_t i = 0; i < n_hot; ++i)
    hot_want += anyseq::align(data[i].first.view(), data[i].second.view(),
                              opt).score;
  if (svc_sum.load() != sync_sum.load() || hot_sum.load() != 4 * hot_want) {
    std::fprintf(stderr, "FAIL: service scores diverge from synchronous\n");
    return 1;
  }

  const auto s = group.stats();
  const auto& inter = s.of(anyseq::service::request_class::interactive);
  const auto& bulk = s.of(anyseq::service::request_class::bulk);
  const std::size_t n_total = n_requests + 4 * n_hot;
  std::printf("alignment server: %zu requests (%zu bulk + %zu hot) from %d "
              "clients over %zu shards\n",
              n_total, n_requests, 4 * n_hot, n_clients, n_shards);
  std::printf("  one-call-per-request : %8.1f req/s  (distinct work only)\n",
              static_cast<double>(n_requests) / sync_s);
  std::printf("  service group        : %8.1f req/s\n",
              static_cast<double>(n_total) / svc_s);
  std::printf("  batches executed     : %llu (mean occupancy %.1f)\n",
              static_cast<unsigned long long>(s.batches),
              s.mean_batch_occupancy);
  std::printf("  interactive p50/p99  : %.1f us / %.1f us  (%llu requests)\n",
              static_cast<double>(inter.p50_latency_ns) / 1e3,
              static_cast<double>(inter.p99_latency_ns) / 1e3,
              static_cast<unsigned long long>(inter.completed));
  std::printf("  bulk p50/p99         : %.1f us / %.1f us  (%llu requests)\n",
              static_cast<double>(bulk.p50_latency_ns) / 1e3,
              static_cast<double>(bulk.p99_latency_ns) / 1e3,
              static_cast<unsigned long long>(bulk.completed));
  std::printf("  cache hit/miss/evict : %llu / %llu / %llu\n",
              static_cast<unsigned long long>(s.cache_hits),
              static_cast<unsigned long long>(s.cache_misses),
              static_cast<unsigned long long>(s.cache_evictions));
  std::printf("  accepted/completed   : %llu / %llu\n",
              static_cast<unsigned long long>(s.accepted),
              static_cast<unsigned long long>(s.completed));
  for (std::size_t i = 0; i < group.shard_count(); ++i)
    std::printf("  shard %zu              : %llu accepted, %llu cache hits\n",
                i,
                static_cast<unsigned long long>(group.shard(i).stats().accepted),
                static_cast<unsigned long long>(
                    group.shard(i).stats().cache_hits));
  return 0;
}
