/// Alignment-server scenario: N client threads fire independent
/// requests at the asynchronous service (the ROADMAP's "heavy traffic
/// from millions of users" shape, scaled to one process), which
/// coalesces them into SIMD batches behind the scenes.  At the end the
/// service telemetry shows what the batching layer bought: mean batch
/// occupancy, p50/p99 latency, and throughput against a synchronous
/// one-call-per-request loop over the same workload.
///
///   $ ./alignment_server [n_requests] [n_clients]   (default 4000, 4)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "anyseq/anyseq.hpp"
#include "bio/random.hpp"
#include "bio/read_sim.hpp"
#include "service/service.hpp"

int main(int argc, char** argv) {
  const std::size_t n_requests =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;
  const int n_clients = argc > 2 ? std::atoi(argv[2]) : 4;
  if (n_requests == 0 || n_clients < 1) {
    std::fprintf(stderr,
                 "usage: alignment_server [n_requests >= 1] [n_clients >= "
                 "1]\n");
    return 2;
  }

  // Simulated traffic: 150 bp read pairs against a random genome.
  anyseq::bio::genome_params gp;
  gp.length = 1 << 20;
  gp.seed = 7;
  const auto ref = anyseq::bio::random_genome("chr_surrogate", gp);
  const auto data = anyseq::bio::simulate_read_pairs(ref, n_requests, {});

  anyseq::align_options opt;
  opt.kind = anyseq::align_kind::global;
  opt.gap_open = -2;
  opt.gap_extend = -1;
  opt.threads = 1;  // the service parallelizes across batches instead

  using clock = std::chrono::steady_clock;

  // Baseline: one synchronous align() per request.
  const auto t0 = clock::now();
  std::atomic<long long> sync_sum{0};
  for (const auto& p : data)
    sync_sum += anyseq::align(p.first.view(), p.second.view(), opt).score;
  const double sync_s =
      std::chrono::duration<double>(clock::now() - t0).count();

  // Server: clients submit individual requests; the service batches.
  anyseq::service::config cfg;
  cfg.max_batch = 64;
  cfg.max_linger = std::chrono::microseconds(300);
  cfg.queue_capacity = 1024;
  anyseq::service::aligner svc(cfg);

  const auto t1 = clock::now();
  std::atomic<long long> svc_sum{0};
  std::vector<std::thread> clients;
  const std::size_t per_client =
      (n_requests + static_cast<std::size_t>(n_clients) - 1) /
      static_cast<std::size_t>(n_clients);
  for (int c = 0; c < n_clients; ++c) {
    clients.emplace_back([&, c] {
      const std::size_t lo = static_cast<std::size_t>(c) * per_client;
      const std::size_t hi = std::min(n_requests, lo + per_client);
      long long local = 0;
      std::vector<anyseq::service::ticket> window;
      window.reserve(64);
      for (std::size_t i = lo; i < hi; ++i) {
        window.push_back(
            svc.submit(data[i].first.view(), data[i].second.view(), opt));
        if (window.size() >= 64) {
          local += window.front().get().score;
          window.erase(window.begin());
        }
      }
      for (auto& t : window) local += t.get().score;
      svc_sum += local;
    });
  }
  for (auto& t : clients) t.join();
  const double svc_s =
      std::chrono::duration<double>(clock::now() - t1).count();
  svc.shutdown(true);

  if (svc_sum.load() != sync_sum.load()) {
    std::fprintf(stderr, "FAIL: service scores diverge from synchronous\n");
    return 1;
  }

  const auto s = svc.stats();
  std::printf("alignment server: %zu requests from %d client threads\n",
              n_requests, n_clients);
  std::printf("  one-call-per-request : %8.1f req/s\n",
              static_cast<double>(n_requests) / sync_s);
  std::printf("  batched service      : %8.1f req/s  (%.2fx)\n",
              static_cast<double>(n_requests) / svc_s, sync_s / svc_s);
  std::printf("  batches executed     : %llu (mean occupancy %.1f)\n",
              static_cast<unsigned long long>(s.batches),
              s.mean_batch_occupancy);
  std::printf("  latency p50 / p99    : %.1f us / %.1f us\n",
              static_cast<double>(s.p50_latency_ns) / 1e3,
              static_cast<double>(s.p99_latency_ns) / 1e3);
  std::printf("  accepted/completed   : %llu / %llu\n",
              static_cast<unsigned long long>(s.accepted),
              static_cast<unsigned long long>(s.completed));
  return 0;
}
