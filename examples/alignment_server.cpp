/// Alignment-server scenario: bulk client threads stream distinct
/// requests while an interactive client fires repeated hot queries at
/// the sharded, cache-fronted service group (the ROADMAP's "heavy
/// traffic from millions of users" shape, scaled to one process).
/// Requests are routed by query hash affinity across N shards, spill to
/// the least-loaded shard under imbalance, and identical requests are
/// served from the shared response cache without touching a batcher.
///
/// Observability is the point of the exercise: request-lifecycle
/// tracing is armed for the serving section, a scraper thread renders
/// the Prometheus exposition periodically while traffic flows (the way
/// a real scrape loop would), and the run ends with a final metrics
/// exposition plus a Chrome-trace JSON dump loadable in Perfetto.
///
///   $ ./alignment_server [n_requests] [n_clients] [n_shards]
///                        [--metrics-out FILE] [--trace-out FILE]
///                                                (default 4000, 4, 2)
///
/// Without --metrics-out the final exposition is printed to stdout;
/// without --trace-out the trace is discarded after the event count is
/// reported.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "anyseq/anyseq.hpp"
#include "bio/random.hpp"
#include "bio/read_sim.hpp"
#include "service/router.hpp"
#include "service/trace.hpp"

namespace {

/// Render the group's full exposition into a growable buffer using the
/// two-call snprintf contract and return the byte count.
std::size_t render_metrics(const anyseq::service::service_group& group,
                           std::vector<char>& buf) {
  const std::size_t need = group.dump_metrics(nullptr, 0);
  buf.resize(need + 1);
  return group.dump_metrics(buf.data(), buf.size());
}

bool write_file(const char* path, const char* data, std::size_t n) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(data, 1, n, f) == n;
  return !(std::fclose(f) != 0 || !ok);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t positional[3] = {4000, 4, 2};
  std::size_t n_positional = 0;
  const char* metrics_out = nullptr;
  const char* trace_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (n_positional < 3) {
      positional[n_positional++] = std::strtoull(argv[i], nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  const std::size_t n_requests = positional[0];
  const std::size_t n_clients = positional[1];
  const std::size_t n_shards = positional[2];
  if (n_requests == 0 || n_clients < 1 || n_shards < 1) {
    std::fprintf(stderr,
                 "usage: alignment_server [n_requests >= 1] [n_clients >= 1] "
                 "[n_shards >= 1] [--metrics-out FILE] [--trace-out FILE]\n");
    return 2;
  }

  // Simulated traffic: 150 bp read pairs against a random genome.
  anyseq::bio::genome_params gp;
  gp.length = 1 << 20;
  gp.seed = 7;
  const auto ref = anyseq::bio::random_genome("chr_surrogate", gp);
  const auto data = anyseq::bio::simulate_read_pairs(ref, n_requests, {});

  anyseq::align_options opt;
  opt.kind = anyseq::align_kind::global;
  opt.gap_open = -2;
  opt.gap_extend = -1;
  opt.threads = 1;  // the service parallelizes across batches instead

  using clock = std::chrono::steady_clock;

  // Baseline: one synchronous align() per request.
  const auto t0 = clock::now();
  std::atomic<long long> sync_sum{0};
  for (const auto& p : data)
    sync_sum += anyseq::align(p.first.view(), p.second.view(), opt).score;
  const double sync_s =
      std::chrono::duration<double>(clock::now() - t0).count();

  // Server: an N-shard group with a shared response cache.  Bulk
  // clients stream the distinct workload; one interactive client fires
  // repeated hot queries that resolve from the cache after first touch.
  anyseq::service::service_group::config cfg;
  cfg.shards = n_shards;
  cfg.cache_capacity = 4096;
  cfg.shard.max_batch = 64;
  cfg.shard.max_linger = std::chrono::microseconds(300);
  cfg.shard.queue_capacity = 1024;
  anyseq::service::service_group group(cfg);

  // Arm lifecycle tracing for the serving section.  Recording is
  // allocation-free and lock-free; the rings live in the collector.
  anyseq::service::trace::collector tracer;
  anyseq::service::trace::arm(tracer);

  // Scrape loop: what a Prometheus agent would do against a /metrics
  // endpoint, run in-process.  Renders the full exposition on a cadence
  // while traffic flows; the last scrape before shutdown is kept.
  std::atomic<bool> scraping{true};
  std::atomic<std::size_t> n_scrapes{0};
  std::thread scraper([&] {
    std::vector<char> buf;
    while (scraping.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      (void)render_metrics(group, buf);
      n_scrapes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const std::size_t n_hot = std::min<std::size_t>(n_requests, 256);

  const auto t1 = clock::now();
  std::atomic<long long> svc_sum{0};
  std::vector<std::thread> clients;
  const std::size_t per_client = (n_requests + n_clients - 1) / n_clients;
  for (std::size_t c = 0; c < n_clients; ++c) {
    clients.emplace_back([&, c] {
      const std::size_t lo = c * per_client;
      const std::size_t hi = std::min(n_requests, lo + per_client);
      anyseq::service::submit_options so;
      so.cls = anyseq::service::request_class::bulk;
      long long local = 0;
      std::vector<anyseq::service::ticket> window;
      window.reserve(64);
      std::size_t head = 0;
      for (std::size_t i = lo; i < hi; ++i) {
        window.push_back(group.submit(data[i].first.view(),
                                      data[i].second.view(), opt, so));
        if (window.size() - head >= 64) local += window[head++].get().score;
      }
      for (std::size_t i = head; i < window.size(); ++i)
        local += window[i].get().score;
      svc_sum += local;
    });
  }
  // Interactive client: hot queries repeat, so after the bulk tier
  // computes them once the cache serves every repeat.
  std::atomic<long long> hot_sum{0};
  std::thread interactive([&] {
    long long local = 0;
    for (std::size_t rep = 0; rep < 4; ++rep)
      for (std::size_t i = 0; i < n_hot; ++i) {
        auto t = group.submit(data[i].first.view(), data[i].second.view(),
                              opt);  // default class: interactive
        local += t.get().score;
      }
    hot_sum += local;
  });
  for (auto& t : clients) t.join();
  interactive.join();
  const double svc_s =
      std::chrono::duration<double>(clock::now() - t1).count();
  group.shutdown(true);
  scraping.store(false, std::memory_order_relaxed);
  scraper.join();

  // Quiescent now: disarm, then dump the trace the rings captured.
  anyseq::service::trace::disarm();

  // Correctness: bulk checksum matches the synchronous loop; the hot
  // queries are 4 repeats of the first n_hot pairs.
  long long hot_want = 0;
  for (std::size_t i = 0; i < n_hot; ++i)
    hot_want += anyseq::align(data[i].first.view(), data[i].second.view(),
                              opt).score;
  if (svc_sum.load() != sync_sum.load() || hot_sum.load() != 4 * hot_want) {
    std::fprintf(stderr, "FAIL: service scores diverge from synchronous\n");
    return 1;
  }

  const std::size_t n_total = n_requests + 4 * n_hot;
  std::printf("alignment server: %zu requests (%zu bulk + %zu hot) from %zu "
              "clients over %zu shards\n",
              n_total, n_requests, 4 * n_hot, n_clients, n_shards);
  std::printf("  one-call-per-request : %8.1f req/s  (distinct work only)\n",
              static_cast<double>(n_requests) / sync_s);
  std::printf("  service group        : %8.1f req/s\n",
              static_cast<double>(n_total) / svc_s);
  std::printf("  trace                : %llu events captured, %llu dropped\n",
              static_cast<unsigned long long>(tracer.size()),
              static_cast<unsigned long long>(tracer.dropped()));
  std::printf("  metric scrapes       : %zu while serving\n",
              n_scrapes.load());

  // Final exposition: everything the old ad-hoc stat block printed —
  // percentiles, batch occupancy, cache and per-shard counters — is in
  // here under stable metric names (see docs/OBSERVABILITY.md).
  std::vector<char> metrics;
  const std::size_t metrics_len = render_metrics(group, metrics);
  if (metrics_out != nullptr) {
    if (!write_file(metrics_out, metrics.data(), metrics_len)) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", metrics_out);
      return 1;
    }
    std::printf("  metrics              : %zu bytes -> %s\n", metrics_len,
                metrics_out);
  } else {
    std::printf("---- metrics (Prometheus text exposition) ----\n%s",
                metrics.data());
  }

  if (trace_out != nullptr) {
    const std::size_t need = tracer.dump_chrome_json(nullptr, 0);
    std::vector<char> json(need + 1);
    const std::size_t n = tracer.dump_chrome_json(json.data(), json.size());
    if (!write_file(trace_out, json.data(), n)) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", trace_out);
      return 1;
    }
    std::printf("  trace json           : %zu bytes -> %s\n", n, trace_out);
  }
  return 0;
}
