/// Walk through the FPGA backend: align on the simulated systolic array
/// and report what a hardware engineer would read off the synthesis /
/// profiling reports — cycles, PE utilization, DDR traffic, projected
/// GCUPS and energy efficiency (paper §IV-C / Table II).
///
///   $ ./fpga_systolic_demo [n] [m] [kpe]

#include <cstdio>
#include <cstdlib>

#include "bio/random.hpp"
#include "core/scoring.hpp"
#include "fpgasim/systolic.hpp"

using namespace anyseq;

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 2000;
  const index_t m = argc > 2 ? std::atoll(argv[2]) : 50000;
  fpgasim::fpga_config cfg;
  cfg.kpe = argc > 3 ? std::atoi(argv[3]) : 128;

  bio::genome_params gp;
  gp.length = n;
  gp.seed = 1;
  const auto q = bio::random_genome("q", gp);
  gp.length = m;
  gp.seed = 2;
  const auto s = bio::random_genome("s", gp);

  const auto r = fpgasim::systolic_score<align_kind::global>(
      q.view(), s.view(), affine_gap{-2, -1}, simple_scoring{2, -1}, cfg);

  std::printf("systolic array : %d PEs @ %.1f MHz (%.3f W)\n", cfg.kpe,
              cfg.freq_mhz, cfg.watts);
  std::printf("problem        : %lld x %lld cells\n",
              static_cast<long long>(n), static_cast<long long>(m));
  std::printf("score          : %d\n", r.score);
  std::printf("cycles         : %llu\n",
              static_cast<unsigned long long>(r.cycles));
  std::printf("PE utilization : %.1f%%\n", 100.0 * r.utilization);
  std::printf("DDR traffic    : %.2f MB\n",
              static_cast<double>(r.ddr_bytes) / 1e6);
  std::printf("compute time   : %.3f ms\n", r.compute_ms);
  std::printf("transfer time  : %.3f ms\n", r.transfer_ms);
  std::printf("GCUPS          : %.2f  (peak K_PE*f = %.2f)\n", r.gcups,
              cfg.kpe * cfg.freq_mhz / 1e3);
  std::printf("GCUPS/W        : %.3f  (paper Table II: 3.187)\n",
              r.gcups_per_watt);
  return 0;
}
