/// Command-line aligner: the downstream-user face of the library.
///
///   anyseq_align [options] QUERY.fa SUBJECT.fa
///
/// Aligns the first record of QUERY.fa against the first record of
/// SUBJECT.fa and prints score, CIGAR, coordinates and (optionally) the
/// gapped alignment.
///
/// Options:
///   --kind global|local|semiglobal   (default global)
///   --match N --mismatch N           (default 2 / -1)
///   --gap-open N --gap-extend N      (default 0 / -1; open != 0 -> affine)
///   --backend scalar|avx2|avx512|gpu_sim|fpga_sim|auto
///   --threads N                      (default hardware)
///   --score-only                     skip traceback
///   --show-alignment                 print the gapped strings

#include <cstdio>
#include <cstring>
#include <string>

#include "anyseq/anyseq.hpp"
#include "bio/fasta.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: anyseq_align [options] QUERY.fa SUBJECT.fa\n"
               "run with --help for the option list in the header.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  anyseq::align_options opt;
  opt.want_alignment = true;
  bool show_alignment = false;
  std::string query_path, subject_path;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--kind") {
      const char* v = next();
      if (v == nullptr) return usage();
      if (std::strcmp(v, "global") == 0) opt.kind = anyseq::align_kind::global;
      else if (std::strcmp(v, "local") == 0) opt.kind = anyseq::align_kind::local;
      else if (std::strcmp(v, "semiglobal") == 0) opt.kind = anyseq::align_kind::semiglobal;
      else return usage();
    } else if (a == "--match") {
      opt.match = std::atoi(next());
    } else if (a == "--mismatch") {
      opt.mismatch = std::atoi(next());
    } else if (a == "--gap-open") {
      opt.gap_open = std::atoi(next());
    } else if (a == "--gap-extend") {
      opt.gap_extend = std::atoi(next());
    } else if (a == "--threads") {
      opt.threads = std::atoi(next());
    } else if (a == "--backend") {
      const char* v = next();
      if (v == nullptr) return usage();
      if (std::strcmp(v, "scalar") == 0) opt.exec = anyseq::backend::scalar;
      else if (std::strcmp(v, "avx2") == 0) opt.exec = anyseq::backend::simd_avx2;
      else if (std::strcmp(v, "avx512") == 0) opt.exec = anyseq::backend::simd_avx512;
      else if (std::strcmp(v, "gpu_sim") == 0) opt.exec = anyseq::backend::gpu_sim;
      else if (std::strcmp(v, "fpga_sim") == 0) opt.exec = anyseq::backend::fpga_sim;
      else if (std::strcmp(v, "auto") == 0) opt.exec = anyseq::backend::auto_select;
      else return usage();
    } else if (a == "--score-only") {
      opt.want_alignment = false;
    } else if (a == "--show-alignment") {
      show_alignment = true;
    } else if (a == "--help") {
      return usage();
    } else if (query_path.empty()) {
      query_path = a;
    } else if (subject_path.empty()) {
      subject_path = a;
    } else {
      return usage();
    }
  }
  if (query_path.empty() || subject_path.empty()) return usage();

  try {
    const auto qs = anyseq::bio::read_fasta_file(query_path);
    const auto ss = anyseq::bio::read_fasta_file(subject_path);
    if (qs.empty() || ss.empty()) {
      std::fprintf(stderr, "error: empty FASTA input\n");
      return 1;
    }
    const auto& q = qs.front();
    const auto& s = ss.front();
    const auto r = anyseq::align(q.view(), s.view(), opt);

    std::printf("query   : %s (%lld bp)\n", q.name().c_str(),
                static_cast<long long>(q.size()));
    std::printf("subject : %s (%lld bp)\n", s.name().c_str(),
                static_cast<long long>(s.size()));
    std::printf("kind    : %s   backend: %s\n", anyseq::to_string(opt.kind),
                anyseq::to_string(opt.exec));
    std::printf("score   : %d\n", r.score);
    if (r.has_alignment) {
      std::printf("region  : q[%lld,%lld) x s[%lld,%lld)\n",
                  static_cast<long long>(r.q_begin),
                  static_cast<long long>(r.q_end),
                  static_cast<long long>(r.s_begin),
                  static_cast<long long>(r.s_end));
      std::printf("cigar   : %s\n", r.cigar.c_str());
      if (show_alignment) {
        constexpr std::size_t width = 70;
        for (std::size_t off = 0; off < r.q_aligned.size(); off += width) {
          std::printf("\n  %s\n  %s\n",
                      r.q_aligned.substr(off, width).c_str(),
                      r.s_aligned.substr(off, width).c_str());
        }
      }
    }
  } catch (const anyseq::error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
