/// Quickstart: align two DNA strings with the default options and print
/// the score, the gapped alignment, and the CIGAR.
///
///   $ ./quickstart [QUERY SUBJECT]

#include <cstdio>

#include "anyseq/anyseq.hpp"

int main(int argc, char** argv) {
  const char* query = argc > 2 ? argv[1] : "ACGTACGTTGCA";
  const char* subject = argc > 2 ? argv[2] : "ACGTCGTTACGCA";

  anyseq::align_options opt;
  opt.kind = anyseq::align_kind::global;
  opt.match = 2;
  opt.mismatch = -1;
  opt.gap_open = -2;   // affine: a gap of length k scores open + k*extend
  opt.gap_extend = -1;
  opt.want_alignment = true;

  const auto r = anyseq::align_strings(query, subject, opt);

  std::printf("query  : %s\n", query);
  std::printf("subject: %s\n\n", subject);
  std::printf("score  : %d\n", r.score);
  std::printf("cigar  : %s\n\n", r.cigar.c_str());
  std::printf("  %s\n  %s\n", r.q_aligned.c_str(), r.s_aligned.c_str());

  // Score-only (linear space) with a different alignment kind:
  opt.kind = anyseq::align_kind::local;
  opt.want_alignment = false;
  const auto local = anyseq::align_strings(query, subject, opt);
  std::printf("\nlocal score: %d (ends at %lld, %lld)\n", local.score,
              static_cast<long long>(local.q_end),
              static_cast<long long>(local.s_end));
  return 0;
}
