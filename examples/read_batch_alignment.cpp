/// NGS-read use case (paper §V, use case ii): simulate Illumina read
/// pairs Mason-style, align every pair with inter-sequence SIMD across
/// batch lanes, and summarize the score distribution.
///
///   $ ./read_batch_alignment [n_pairs]   (default 2000)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "anyseq/anyseq.hpp"
#include "bio/random.hpp"
#include "bio/read_sim.hpp"
#include "simd/detect.hpp"

int main(int argc, char** argv) {
  const std::size_t n_pairs =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;

  anyseq::bio::genome_params gp;
  gp.length = 1 << 20;
  gp.seed = 42;
  const auto ref = anyseq::bio::random_genome("chr10_surrogate", gp);
  const auto data = anyseq::bio::simulate_read_pairs(ref, n_pairs, {});

  std::vector<anyseq::seq_pair> pairs;
  pairs.reserve(data.size());
  for (const auto& p : data)
    pairs.push_back({p.first.view(), p.second.view()});

  anyseq::align_options opt;
  opt.kind = anyseq::align_kind::global;
  opt.gap_open = -2;
  opt.gap_extend = -1;
  opt.exec = anyseq::simd::lanes_runnable(16, anyseq::simd::detect())
                 ? anyseq::backend::simd_avx2
                 : anyseq::backend::auto_select;
  opt.threads = 4;

  const auto results = anyseq::align_batch(pairs, opt);

  std::vector<anyseq::score_t> scores;
  scores.reserve(results.size());
  for (const auto& r : results) scores.push_back(r.score);
  std::sort(scores.begin(), scores.end());
  const auto at = [&](double q) {
    return scores[static_cast<std::size_t>(q * (scores.size() - 1))];
  };
  std::printf("aligned %zu read pairs (150 bp, both mates from one locus)\n",
              results.size());
  std::printf("score min/median/max : %d / %d / %d\n", scores.front(),
              at(0.5), scores.back());
  std::printf("p10 / p90            : %d / %d\n", at(0.1), at(0.9));
  std::printf("perfect pairs (=300) : %zu\n",
              static_cast<std::size_t>(
                  std::count(scores.begin(), scores.end(), 300)));
  return 0;
}
