/// Long-genome use case (paper §V, use case i): build two Table I
/// surrogate genomes, align them globally with the multithreaded SIMD
/// wavefront engine, and reconstruct the full alignment in linear space.
///
///   $ ./long_genome_alignment [scale]    (default 1/1024 of Table I)

#include <cstdio>
#include <cstdlib>

#include "anyseq/anyseq.hpp"
#include "bio/datasets.hpp"
#include "simd/detect.hpp"

int main(int argc, char** argv) {
  const std::uint64_t scale =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1024;
  if (scale == 0) {
    std::fprintf(stderr,
                 "error: scale must be a positive integer "
                 "(usage: long_genome_alignment [scale])\n");
    return 2;
  }

  const auto pair = anyseq::bio::make_pair(0, scale);
  std::printf("aligning %s (%lld bp)\n     vs  %s (%lld bp)\n",
              pair.a.name().c_str(), static_cast<long long>(pair.a.size()),
              pair.b.name().c_str(), static_cast<long long>(pair.b.size()));

  anyseq::align_options opt;
  opt.kind = anyseq::align_kind::global;
  opt.gap_open = -2;
  opt.gap_extend = -1;
  opt.want_alignment = true;
  opt.exec = anyseq::backend::simd_avx2;
  opt.threads = 4;
  opt.tile = 256;
  opt.full_matrix_cells = 1 << 20;  // force the linear-space D&C path
  if (!anyseq::simd::lanes_runnable(16, anyseq::simd::detect()))
    opt.exec = anyseq::backend::auto_select;  // host cannot run avx2

  const auto r = anyseq::align(pair.a.view(), pair.b.view(), opt);

  std::printf("\nscore        : %d\n", r.score);
  std::printf("cells relaxed: %llu (<= 2x n*m: divide & conquer)\n",
              static_cast<unsigned long long>(r.cells));
  std::printf("alignment len: %zu columns\n", r.q_aligned.size());

  // Identity over the aligned columns.
  std::size_t same = 0;
  for (std::size_t i = 0; i < r.q_aligned.size(); ++i)
    if (r.q_aligned[i] == r.s_aligned[i]) ++same;
  std::printf("identity     : %.1f%%\n",
              100.0 * static_cast<double>(same) /
                  static_cast<double>(r.q_aligned.size()));
  std::printf("cigar prefix : %.60s...\n", r.cigar.c_str());
  return 0;
}
