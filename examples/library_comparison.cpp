/// Compare AnySeq against the reimplemented baseline libraries on one
/// workload — a miniature of the paper's Fig. 5a, showing how the pieces
/// compose from the public headers.
///
///   $ ./library_comparison [scale]       (default 1/1024 of Table I)

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "anyseq/anyseq.hpp"
#include "baselines/libraries.hpp"
#include "bio/datasets.hpp"
#include "core/scoring.hpp"

using namespace anyseq;

namespace {
double run_gcups(std::uint64_t cells, auto&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(cells) / s / 1e9;
}
}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t scale =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1024;
  const auto pr = bio::make_pair(0, scale);
  const auto a = pr.a.view(), b = pr.b.view();
  const auto cells = static_cast<std::uint64_t>(a.size()) * b.size();
  constexpr simple_scoring sc{2, -1};
  constexpr linear_gap gap{-1};

  std::printf("workload: %lld x %lld bp, global, linear gaps, backend %s\n\n",
              static_cast<long long>(a.size()),
              static_cast<long long>(b.size()), backend_name());

  score_t want = 0;
  {
    // The public dispatcher picks the widest engine variant this host
    // can run (anyseq::v_avx512 / v_avx2 / v_scalar).
    align_options opt;
    opt.kind = align_kind::global;
    opt.threads = 4;
    opt.tile = 128;
    opt.gap_extend = -1;
    score_t got = 0;
    const double g = run_gcups(cells, [&] { got = align(a, b, opt).score; });
    want = got;
    std::printf("AnySeq         : %7.3f GCUPS (score %d)\n", g, got);
  }
  {
    baselines::seqan_like<align_kind::global, 16> eng(2, -1, gap, {4, 128});
    score_t got = 0;
    const double g = run_gcups(cells, [&] { got = eng.score(a, b).score; });
    std::printf("SeqAn-like     : %7.3f GCUPS (score %d)%s\n", g, got,
                got == want ? "" : "  SCORE MISMATCH!");
  }
  {
    baselines::parasail_like<align_kind::global, 16> eng(2, -1, gap,
                                                         {4, 128});
    score_t got = 0;
    const double g = run_gcups(cells, [&] { got = eng.score(a, b).score; });
    std::printf("Parasail-like  : %7.3f GCUPS (score %d)%s\n", g, got,
                got == want ? "" : "  SCORE MISMATCH!");
  }
  std::printf(
      "\nAll three compute identical optima; the differences are the\n"
      "scheduling policy and what partial evaluation specializes away.\n");
  return 0;
}
